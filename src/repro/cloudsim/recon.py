"""Reconnaissance and spoofing adversaries (paper Section VII).

Two attack vectors the paper argues the architecture defeats structurally:

- **IP spoofing** — "If not using their real IP addresses, bots are unable
  to receive the redirection messages sent by servers or the load
  balancers, hence will be left behind our moving replica servers."
  Redirection is a two-way handshake: a spoofed source never learns a
  replica address and never lands on a whitelist, so its junk stops at
  the (well-provisioned, auto-scaling) load balancers.

- **Scanning** — "attackers may perform reconnaissance attacks such as IP
  and port scanning.  However, since we constantly shift the network
  locations of the replica servers, it is difficult for attackers to pick
  the right target even if they have profiled the entire IP pool."
  A scanner that probes random addresses in the cloud's pool finds an
  active replica with probability ``active replicas / pool size``, and
  whatever it finds goes stale at the next substitution — and is
  whitelist-rejected meanwhile.

Both adversaries are implemented against the real simulated components so
the defense properties are *measured*, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import CloudContext

__all__ = ["SpoofingFlooder", "ReconnaissanceScanner"]


@dataclass
class SpoofingFlooder:
    """A flood of connection attempts with forged source addresses.

    Spoofed packets reach the load balancers (which absorb them — the
    paper assumes auto-scaling LBs with tens of Gbps of capacity) but the
    redirect replies go to the forged addresses, so the attacker never
    completes the handshake: no whitelist entry, no replica address, no
    replica traffic.
    """

    ctx: "CloudContext"
    packets_per_second: float = 10_000.0
    tick: float = 0.5
    packets_sent: float = field(default=0.0, init=False)
    replica_addresses_learned: int = field(default=0, init=False)
    _running: bool = field(default=False, init=False)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.ctx.sim.schedule(self.tick, self._flood, label="spoof-flood")

    def stop(self) -> None:
        self._running = False

    def _flood(self) -> None:
        if not self._running:
            return
        batch = self.packets_per_second * self.tick
        self.packets_sent += batch
        # The load balancer replies toward the spoofed sources; the
        # attacker observes nothing.  No whitelist mutation, no replica
        # load — this is precisely the structural claim, and the replica
        # assertion lives in the tests: their meters stay untouched.
        for _, balancer in sorted(self.ctx.balancers.items()):
            balancer.spoofed_packets += batch / max(
                1, len(self.ctx.balancers)
            )
        self.ctx.sim.schedule(self.tick, self._flood, label="spoof-flood")


@dataclass
class ScanReport:
    """Cumulative scanning outcome."""

    probes: int = 0
    hits: int = 0  # probe landed on a then-active replica address
    stale_hits: int = 0  # probed an address that was once a replica
    admitted_requests: int = 0  # requests a replica actually served


class ReconnaissanceScanner:
    """Randomly probes the cloud address pool for replica servers.

    Args:
        ctx: simulation context.
        pool_size: size of the address space the replicas hide in (the
            provider's public pool).  Replica addresses are assumed to be
            drawn uniformly from it.
        probes_per_second: scanner speed.
    """

    def __init__(
        self,
        ctx: "CloudContext",
        pool_size: int = 65_536,
        probes_per_second: float = 100.0,
        tick: float = 0.5,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        self.ctx = ctx
        self.pool_size = pool_size
        self.probes_per_second = probes_per_second
        self.tick = tick
        self.report = ScanReport()
        self.discovered: list[str] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.ctx.sim.schedule(self.tick, self._scan, label="recon")

    def stop(self) -> None:
        self._running = False

    def hit_probability(self) -> float:
        """Chance a single uniform probe lands on an active replica."""
        return len(self.ctx.active_replicas()) / self.pool_size

    def _scan(self) -> None:
        if not self._running:
            return
        probes = int(round(self.probes_per_second * self.tick))
        self.report.probes += probes
        # Binomial thinning instead of enumerating the whole pool.
        hits = int(
            self.ctx.rng.binomial(probes, min(1.0, self.hit_probability()))
        )
        active = self.ctx.active_replicas()
        for _ in range(hits):
            replica = active[int(self.ctx.rng.integers(len(active)))]
            self.report.hits += 1
            self.discovered.append(replica.endpoint.address)
            # Try to use the discovery: an un-whitelisted request.
            replica.handle_request(
                f"scanner-{self.report.probes}",
                1.0,
                self._count_admitted,
            )
        self.ctx.sim.schedule(self.tick, self._scan, label="recon")

    def _count_admitted(self, served: bool, _service_time: float) -> None:
        if served:
            self.report.admitted_requests += 1

    def stale_fraction(self) -> float:
        """How many past discoveries no longer point at an active replica."""
        if not self.discovered:
            return 0.0
        stale = sum(
            1
            for address in self.discovered
            if (replica := self.ctx.replica_by_address(address)) is None
            or not replica.is_active
        )
        return stale / len(self.discovered)
