"""Client-side agents: benign users, persistent bots, on-off bots.

Threat model (paper Section II-B): *naive bots* only attack fixed addresses
from a hit-list (they live in :mod:`repro.cloudsim.botnet`); *persistent
bots* interact with the environment exactly like benign clients — resolve
DNS, follow load-balancer and shuffle redirects — and then betray the
replica locations to the botnet, or act as insiders launching computational
attacks themselves.  *On-off bots* (Section VII) are persistent bots that go
quiet whenever they notice a shuffle, hoping to blend with benign clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .network import Endpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .botnet import Botnet
    from .system import CloudContext

__all__ = ["ClientStats", "BenignClient", "PersistentBot", "OnOffBot"]


@dataclass
class ClientStats:
    """Per-client request bookkeeping."""

    requests_sent: int = 0
    requests_ok: int = 0
    requests_failed: int = 0
    migrations: int = 0
    rejoins: int = 0
    total_latency: float = 0.0

    @property
    def success_ratio(self) -> float:
        if self.requests_sent == 0:
            return 1.0
        return self.requests_ok / self.requests_sent

    @property
    def mean_latency(self) -> float:
        if self.requests_ok == 0:
            return 0.0
        return self.total_latency / self.requests_ok


class BenignClient:
    """A legitimate user session.

    Joins through DNS → load balancer → replica (steps 1-6 of the paper's
    Figure 1), then issues requests on a think-time loop and follows any
    redirect its replica pushes during a shuffle.
    """

    kind = "benign"

    def __init__(self, ctx: "CloudContext", client_id: str) -> None:
        self.ctx = ctx
        self.client_id = client_id
        # Clients live "on the Internet": model them as a distinct domain
        # so client<->cloud latency is wide-area.
        self.endpoint = Endpoint(domain="internet", address=client_id)
        self.replica_endpoint: Endpoint | None = None
        self.stats = ClientStats()
        self.active = True
        self._request_work = ctx.config.request_work
        self._think_time = ctx.config.think_time

    # ------------------------------------------------------------------
    # joining
    # ------------------------------------------------------------------
    def join(self) -> None:
        """Resolve the service and obtain a replica assignment."""
        lb_endpoint = self.ctx.dns.resolve(self.ctx.dns.service_name)
        balancer = self.ctx.dns.balancer_for(lb_endpoint)
        rtt = self.ctx.latency.round_trip(self.endpoint, lb_endpoint,
                                          self.ctx.rng)
        self.ctx.sim.schedule(
            rtt, lambda: self._complete_join(balancer),
            label=f"join:{self.client_id}",
        )

    def _complete_join(self, balancer) -> None:
        if not self.active:
            return
        target = balancer.assign(self.client_id, self)
        if target is None:
            # No active replica right now (mid-substitution): back off.
            self.ctx.sim.schedule(
                self.ctx.config.join_retry_delay, self.join,
                label=f"join-retry:{self.client_id}",
            )
            return
        self.replica_endpoint = target
        self.on_assigned(target)
        self._schedule_next_request(initial=True)

    def on_assigned(self, endpoint: Endpoint) -> None:
        """Hook invoked whenever the client learns a replica location."""

    # ------------------------------------------------------------------
    # request loop
    # ------------------------------------------------------------------
    def _schedule_next_request(self, initial: bool = False) -> None:
        if not self.active:
            return
        think = self.ctx.rng.exponential(self._think_time)
        if initial:
            think *= self.ctx.rng.random()  # desynchronize start-up
        self.ctx.sim.schedule(
            max(1e-6, think), self.send_request,
            label=f"req:{self.client_id}",
        )

    def send_request(self) -> None:
        """Issue one application request to the assigned replica."""
        if not self.active:
            return
        if self.replica_endpoint is None:
            self._schedule_next_request()
            return
        replica = self.ctx.replica_at(self.replica_endpoint)
        if replica is None or not replica.is_active:
            # The moving target moved without us (e.g. missed redirect):
            # re-enter through the front door.
            self.stats.rejoins += 1
            self.replica_endpoint = None
            self.join()
            return
        self.stats.requests_sent += 1
        send_time = self.ctx.now
        one_way = self.ctx.latency.one_way(
            self.endpoint, replica.endpoint, self.ctx.rng
        )

        def arrive() -> None:
            replica.handle_request(
                self.client_id, self._request_work,
                lambda served, service: self._on_processed(
                    replica, served, service, send_time
                ),
            )

        self.ctx.sim.schedule(one_way, arrive,
                              label=f"req-net:{self.client_id}")
        self._schedule_next_request()

    def _on_processed(
        self, replica, served: bool, service_time: float, send_time: float
    ) -> None:
        if not served:
            # Failed-but-completed: the request still crossed the
            # network and reached the replica before being rejected or
            # dropped, so it carries a real measured duration — which
            # must stay in the latency series (repro.sim.qos contract).
            self.stats.requests_failed += 1
            self.ctx.metrics.record_request(
                self, ok=False, latency=self.ctx.now - send_time
            )
            return
        back = self.ctx.latency.one_way(
            replica.endpoint, self.endpoint, self.ctx.rng
        )

        def delivered() -> None:
            latency = self.ctx.now - send_time
            self.stats.requests_ok += 1
            self.stats.total_latency += latency
            self.ctx.metrics.record_request(self, ok=True, latency=latency)

        self.ctx.sim.schedule(service_time + back, delivered,
                              label=f"resp:{self.client_id}")

    # ------------------------------------------------------------------
    # shuffling
    # ------------------------------------------------------------------
    def receive_redirect(self, new_endpoint: Endpoint) -> None:
        """Handle a WebSocket shuffle notification from the old replica."""
        if not self.active:
            return
        self.replica_endpoint = new_endpoint
        self.stats.migrations += 1
        self.on_assigned(new_endpoint)

    def leave(self) -> None:
        """End the session."""
        self.active = False
        if self.replica_endpoint is not None:
            replica = self.ctx.replica_at(self.replica_endpoint)
            if replica is not None:
                replica.evict(self.client_id)
            self.replica_endpoint = None


class PersistentBot(BenignClient):
    """A sophisticated bot that follows the moving target.

    Blends in with benign traffic, then (a) reveals every replica location
    it learns to the botnet so naive bots can flood it, and (b) optionally
    mounts a computational attack itself by issuing expensive requests
    (``attack_work`` units instead of 1) at an elevated rate.
    """

    kind = "persistent"

    def __init__(
        self,
        ctx: "CloudContext",
        client_id: str,
        botnet: "Botnet",
        computational: bool = False,
    ) -> None:
        super().__init__(ctx, client_id)
        self.botnet = botnet
        self.computational = computational
        if computational:
            # Insider attack: expensive requests at an aggressive rate.
            self._request_work = ctx.config.attack_work
            self._think_time = ctx.config.attack_think_time

    def on_assigned(self, endpoint: Endpoint) -> None:
        delay = self.ctx.rng.exponential(self.ctx.config.reveal_delay)
        address = endpoint.address
        self.ctx.sim.schedule(
            delay, lambda: self._reveal(address),
            label=f"reveal:{self.client_id}",
        )

    def _reveal(self, address: str) -> None:
        if not self.active:
            return
        # Only reveal the address we are *currently* assigned to; stale
        # reveals after another shuffle would waste botnet effort anyway.
        if (
            self.replica_endpoint is not None
            and self.replica_endpoint.address == address
        ):
            self.botnet.reveal(address)


class OnOffBot(PersistentBot):
    """A non-aggressive persistent bot (paper Section VII).

    Upon noticing a shuffle (receiving a redirect), it suspends attacking
    for ``off_duration`` seconds, hoping to map the system or re-blend with
    benign clients.  The paper's argument — reproduced by the adversary
    benchmarks — is that this only lowers attack intensity: the defense is
    stateless and never shuffles unattacked replicas, so silence buys the
    bot nothing.
    """

    kind = "onoff"

    def __init__(
        self,
        ctx: "CloudContext",
        client_id: str,
        botnet: "Botnet",
        off_duration: float = 30.0,
    ) -> None:
        super().__init__(ctx, client_id, botnet)
        self.off_duration = off_duration
        self._quiet_until = 0.0

    def receive_redirect(self, new_endpoint: Endpoint) -> None:
        # A redirect is the observable signature of a shuffle: go dark.
        self._quiet_until = self.ctx.now + self.off_duration
        super().receive_redirect(new_endpoint)

    def on_assigned(self, endpoint: Endpoint) -> None:
        if self.ctx.now < self._quiet_until:
            # Defer the reveal until the off period ends.
            address = endpoint.address
            self.ctx.sim.schedule(
                self._quiet_until - self.ctx.now + 1e-6,
                lambda: self._reveal_if_current(address),
                label=f"deferred-reveal:{self.client_id}",
            )
            return
        super().on_assigned(endpoint)

    def _reveal_if_current(self, address: str) -> None:
        if (
            self.active
            and self.replica_endpoint is not None
            and self.replica_endpoint.address == address
        ):
            self.botnet.reveal(address)
