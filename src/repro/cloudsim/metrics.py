"""Quality-of-service metrics for the cloud simulation.

The paper's success criterion is "restoring quality of service for
benign-but-affected clients": we track per-kind request outcomes over time
so experiments can show benign success rates collapsing when the attack
lands and recovering as shuffles quarantine the bots.

The per-window record is the shared :class:`~repro.sim.qos.QoSWindow`
schema (``WindowSample`` is the historical alias), which the live
service's telemetry emits too — one comparison format for simulated and
live runs.  Failed-but-completed requests keep their measured latency in
the window mean (see :mod:`repro.sim.qos` for the accounting contract).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.qos import QoSWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import CloudContext

__all__ = ["QoSWindow", "WindowSample", "MetricsCollector"]

#: Historical name of the window record, kept as a true alias so
#: ``isinstance`` checks and pickling agree across both spellings.
WindowSample = QoSWindow


class MetricsCollector:
    """Streaming QoS aggregation with periodic snapshots."""

    def __init__(self, ctx: "CloudContext", interval: float = 1.0) -> None:
        self.ctx = ctx
        self.interval = interval
        self.samples: list[QoSWindow] = []
        self._window_sent = 0
        self._window_ok = 0
        self._window_latency = 0.0
        self._window_latency_count = 0
        self._running = False
        # lifetime totals per client kind
        self.totals: dict[str, dict[str, float]] = {}

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.ctx.sim.schedule(self.interval, self._snapshot, label="metrics")

    def stop(self) -> None:
        self._running = False

    def record_request(self, client, ok: bool, latency: float | None) -> None:
        """Record one completed (or failed) request outcome.

        ``latency`` is the measured request duration when one exists —
        for successes *and* for failures that completed (throttled,
        dropped at the replica).  ``None`` means the request never
        produced an observable completion, so it contributes to the
        success ratio but not to the latency mean.
        """
        kind = getattr(client, "kind", "benign")
        totals = self.totals.setdefault(
            kind, {"sent": 0.0, "ok": 0.0, "latency": 0.0}
        )
        totals["sent"] += 1
        if ok:
            totals["ok"] += 1
        if latency is not None:
            totals["latency"] += latency
        if kind == "benign":
            self._window_sent += 1
            if ok:
                self._window_ok += 1
            if latency is not None:
                self._window_latency += latency
                self._window_latency_count += 1

    def _snapshot(self) -> None:
        if not self._running:
            return
        attacked = sum(
            1 for r in self.ctx.active_replicas() if r.overloaded()
        )
        self.samples.append(
            QoSWindow(
                time=self.ctx.now,
                benign_sent=self._window_sent,
                benign_ok=self._window_ok,
                latency_sum=self._window_latency,
                latency_count=self._window_latency_count,
                attacked_replicas=attacked,
                active_replicas=len(self.ctx.active_replicas()),
                shuffles_completed=self.ctx.coordinator.shuffle_count,
            )
        )
        self._window_sent = 0
        self._window_ok = 0
        self._window_latency = 0.0
        self._window_latency_count = 0
        self.ctx.sim.schedule(self.interval, self._snapshot, label="metrics")

    # ------------------------------------------------------------------
    # derived summaries
    # ------------------------------------------------------------------
    def success_ratio_between(self, start: float, end: float) -> float:
        """Benign success ratio over a time slice of the run."""
        sent = ok = 0
        for sample in self.samples:
            if start <= sample.time <= end:
                sent += sample.benign_sent
                ok += sample.benign_ok
        if sent == 0:
            return 1.0
        return ok / sent

    def benign_success_ratio(self, kind: str = "benign") -> float:
        """Lifetime success ratio for a client kind."""
        totals = self.totals.get(kind)
        if not totals or totals["sent"] == 0:
            return 1.0
        return totals["ok"] / totals["sent"]
