"""Discrete-event simulation of the paper's full cloud architecture.

Components map one-to-one onto Section III / Figure 1:

- :mod:`~repro.cloudsim.engine` — the DES kernel (clock + event heap).
- :mod:`~repro.cloudsim.network` — latency model, endpoints, load meters.
- :mod:`~repro.cloudsim.dns` — round-robin DNS front door (steps 1-2).
- :mod:`~repro.cloudsim.loadbalancer` — redirecting, sticky-session load
  balancers with re-entry memory (steps 3-4; Section VII).
- :mod:`~repro.cloudsim.replica` — whitelist-enforcing replica servers
  with finite bandwidth and compute (steps 5-6).
- :mod:`~repro.cloudsim.coordinator` — the coordination server: detection,
  replica instantiation, shuffle planning and execution.
- :mod:`~repro.cloudsim.clients` — benign clients, persistent bots,
  on-off bots.
- :mod:`~repro.cloudsim.botnet` — hit-list management and naive flooding.
- :mod:`~repro.cloudsim.metrics` — benign QoS timelines.
- :mod:`~repro.cloudsim.system` — :class:`CloudDefenseSystem`, the facade
  that wires everything together.
- :mod:`~repro.cloudsim.migration` — the EC2-prototype latency emulation
  behind Figure 12.
"""

from __future__ import annotations

from .botnet import Botnet
from .clients import BenignClient, ClientStats, OnOffBot, PersistentBot
from .coordinator import Coordinator, ShuffleRecord
from .dns import DnsServer
from .engine import Event, SimulationError, Simulator
from .faults import ChaosMonkey
from .loadbalancer import DomainDirectory, LoadBalancer
from .metrics import MetricsCollector, QoSWindow, WindowSample
from .migration import (
    MigrationModel,
    MigrationSample,
    PAGE_BYTES,
    simulate_migration,
)
from .network import Endpoint, LatencyModel, LoadMeter
from .recon import ReconnaissanceScanner, SpoofingFlooder
from .replica import ReplicaServer, ReplicaState, ReplicaStats
from .system import CloudConfig, CloudContext, CloudDefenseSystem, RunReport
from .trace import TraceEvent, Tracer

__all__ = [
    "BenignClient",
    "Botnet",
    "ChaosMonkey",
    "ClientStats",
    "CloudConfig",
    "CloudContext",
    "CloudDefenseSystem",
    "Coordinator",
    "DnsServer",
    "DomainDirectory",
    "Endpoint",
    "Event",
    "LatencyModel",
    "LoadBalancer",
    "LoadMeter",
    "MetricsCollector",
    "MigrationModel",
    "MigrationSample",
    "OnOffBot",
    "PAGE_BYTES",
    "PersistentBot",
    "QoSWindow",
    "ReconnaissanceScanner",
    "ReplicaServer",
    "ReplicaState",
    "ReplicaStats",
    "RunReport",
    "ShuffleRecord",
    "SimulationError",
    "Simulator",
    "SpoofingFlooder",
    "TraceEvent",
    "Tracer",
    "WindowSample",
    "simulate_migration",
]
