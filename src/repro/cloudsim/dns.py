"""DNS front door (steps 1-2 of the paper's Figure 1).

Clients resolve the protected service's domain name; the DNS server spreads
them over the cloud domains where the defense is deployed (round-robin DNS,
RFC 1794 style).  Per the paper's threat model the DNS infrastructure is
well-provisioned and out of scope for the attack, so it is modeled as an
always-available directory.
"""

from __future__ import annotations

from .loadbalancer import LoadBalancer
from .network import Endpoint

__all__ = ["DnsServer"]


class DnsServer:
    """Round-robin resolver mapping the service name to load balancers."""

    def __init__(self, service_name: str = "example.com") -> None:
        self.service_name = service_name
        self._balancers: list[LoadBalancer] = []
        self._cursor = 0
        self.queries = 0

    def register(self, balancer: LoadBalancer) -> None:
        """Publish a load balancer under the service name."""
        self._balancers.append(balancer)

    def resolve(self, name: str) -> Endpoint:
        """Resolve the service name to a load-balancer endpoint."""
        if name != self.service_name:
            raise KeyError(f"unknown name: {name}")
        if not self._balancers:
            raise RuntimeError("no load balancers registered")
        self.queries += 1
        balancer = self._balancers[self._cursor % len(self._balancers)]
        self._cursor += 1
        return balancer.endpoint

    def balancer_for(self, endpoint: Endpoint) -> LoadBalancer:
        """Look up the balancer object behind a resolved endpoint."""
        for balancer in self._balancers:
            if balancer.endpoint == endpoint:
                return balancer
        raise KeyError(f"no balancer at {endpoint}")
