"""EC2-prototype migration-latency model (paper Section VI-B, Figure 12).

The paper's proof-of-concept: two replica web servers and a coordinator on
EC2 micro instances, up to 60 PlanetLab Firefox clients all viewing a
246 KB page served by replica P1.  On a simulated attack, P1 (1) consults
the coordinator, (2) receives the shuffle decision, (3) pushes WebSocket
redirect notifications to every client from its single-threaded Node.js
server, and (4-7) each client reconnects to P2 and reloads the page.
Figure 12 reports the time for *all* clients to finish (upper curve,
< 5 s at 60 clients) and the mean per-client redirection time (lower
curve), over 15 repetitions with 95% confidence intervals.

Without EC2/PlanetLab access we emulate the same pipeline with latency
distributions calibrated to the prototype's environment: wide-area RTTs of
tens of milliseconds, a serialized per-client push slot on the
single-threaded server, TCP slow-start-flavoured transfer of the 246 KB
page over PlanetLab-class bandwidth.  The code path mirrors steps 1-7
exactly, so the *shape* of Figure 12 — total time growing roughly linearly
with the client count (the serialized pushes), per-client average growing
much more slowly — is a property of the mechanism, not of the constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["MigrationModel", "MigrationSample", "simulate_migration"]

PAGE_BYTES = 246 * 1024  # the prototype's static page
TCP_SEGMENT = 1460.0  # MSS in bytes
INITIAL_WINDOW = 10.0  # segments (typical for the era's Linux servers)


@dataclass(frozen=True)
class MigrationSample:
    """Result of one simulated migration of ``n_clients`` clients."""

    n_clients: int
    total_time: float  # all clients done (upper curve of Figure 12)
    per_client_mean: float  # lower curve of Figure 12
    per_client_times: tuple[float, ...]


@dataclass
class MigrationModel:
    """Tunable latency model of the prototype pipeline.

    Attributes:
        coordinator_rtt_median: P1 <-> coordinator consult (steps 1-2,
            EC2-internal).
        client_rtt_median: replica <-> PlanetLab client round trip.
        rtt_sigma: lognormal spread for all RTT draws.
        push_service_min/max: single-threaded per-client WebSocket push
            slot on P1 (uniform).
        bandwidth_median: client download bandwidth in bytes/s (PlanetLab
            nodes of the era; lognormal).
        bandwidth_sigma: lognormal spread of client bandwidth.
    """

    coordinator_rtt_median: float = 0.010
    client_rtt_median: float = 0.080
    rtt_sigma: float = 0.35
    push_service_min: float = 0.020
    push_service_max: float = 0.060
    bandwidth_median: float = 600_000.0
    bandwidth_sigma: float = 0.50

    def _rtt(self, rng: np.random.Generator, median: float) -> float:
        return float(rng.lognormal(math.log(median), self.rtt_sigma))

    def transfer_time(self, rng: np.random.Generator, rtt: float) -> float:
        """Page download time: TCP handshake + slow start + streaming.

        A compact slow-start model: the window doubles each RTT from
        ``INITIAL_WINDOW`` segments until the remaining bytes fit, then the
        residual streams at the client's sampled bandwidth.
        """
        bandwidth = float(
            rng.lognormal(math.log(self.bandwidth_median),
                          self.bandwidth_sigma)
        )
        remaining = float(PAGE_BYTES)
        window = INITIAL_WINDOW * TCP_SEGMENT
        time = rtt  # TCP connect (SYN/SYN-ACK)
        time += rtt  # HTTP GET + first byte
        while remaining > 0:
            sent = min(window, remaining)
            remaining -= sent
            time += sent / bandwidth
            if remaining > 0:
                time += rtt / 2  # pacing: ACK-clocked window growth
                window *= 2
        return time

    def simulate_once(
        self, n_clients: int, rng: np.random.Generator
    ) -> MigrationSample:
        """Simulate one full migration of ``n_clients`` (steps 1-7)."""
        if n_clients < 1:
            raise ValueError(f"n_clients={n_clients} must be >= 1")
        # Steps 1-2: P1 consults the coordinator for the shuffle decision.
        consult = self._rtt(rng, self.coordinator_rtt_median)
        # Step 3: serialized WebSocket pushes from the single-threaded
        # server — client i's notification leaves after i service slots.
        push_slots = rng.uniform(
            self.push_service_min, self.push_service_max, size=n_clients
        )
        departure = consult + np.cumsum(push_slots)
        per_client = []
        for i in range(n_clients):
            rtt = self._rtt(rng, self.client_rtt_median)
            notify = departure[i] + rtt / 2  # push travels one way
            # Steps 4-7: reconnect to P2 and reload the page.
            reload_time = self.transfer_time(rng, rtt)
            per_client.append(notify + reload_time)
        times = tuple(float(t) for t in per_client)
        return MigrationSample(
            n_clients=n_clients,
            total_time=max(times),
            per_client_mean=float(np.mean(times)),
            per_client_times=times,
        )


def simulate_migration(
    n_clients: int,
    repetitions: int = 15,
    seed: int = 0,
    model: MigrationModel | None = None,
) -> list[MigrationSample]:
    """Repeat the prototype measurement (paper: 15 reps per point)."""
    model = model or MigrationModel()
    seed_seq = np.random.SeedSequence(seed)
    return [
        model.simulate_once(n_clients, np.random.default_rng(child))
        for child in seed_seq.spawn(repetitions)
    ]
