"""Redirecting load balancers (paper Section III-B).

One or more load balancers per cloud domain keep an up-to-date list of the
domain's active replicas and *redirect* (never forward) each new client to
one of them: the reply carries the replica's unique network location, the
replica's whitelist gains the client's IP, and from then on the client and
replica talk directly (sticky sessions, one replica per client IP).

Redirection-as-handshake gives two properties the paper leans on: spoofed
source IPs never learn a replica address (they cannot receive the
redirect), and the load balancer stays out of the data path so it is not a
bottleneck during an attack.

Section VII's re-entry defense also lives here: a client that leaves and
returns within the memory window is pinned to its previously recorded
replica, so an attacker cannot reshuffle itself into a cleaner group by
reconnecting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .network import Endpoint
from .replica import ReplicaServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import CloudContext

__all__ = ["LoadBalancer", "AssignmentRecord"]


@dataclass
class AssignmentRecord:
    """Sticky-session memory for one client IP."""

    replica_address: str
    recorded_at: float


@dataclass
class DomainDirectory:
    """Shared per-domain state behind all of a domain's load balancers.

    The paper allows "deploying multiple load balancers per cloud domain"
    for resiliency; for sticky sessions to survive a client landing on a
    different balancer (round-robin DNS), the replica registry and the
    assignment memory must be shared domain-wide — the coordination
    server's "global client-to-server bindings" scoped to one domain.
    """

    domain: str
    replicas: dict[str, "ReplicaServer"] = field(default_factory=dict)
    assignments: dict[str, AssignmentRecord] = field(default_factory=dict)


class LoadBalancer:
    """A redirecting load balancer frontend for one cloud domain.

    Multiple balancers of the same domain share one
    :class:`DomainDirectory`; each keeps only its own traffic counters.
    """

    def __init__(
        self,
        ctx: "CloudContext",
        domain: str,
        index: int = 0,
        directory: DomainDirectory | None = None,
    ) -> None:
        self.ctx = ctx
        self.domain = domain
        self.endpoint = Endpoint(domain=domain, address=f"lb-{domain}-{index}")
        self.directory = (
            directory if directory is not None else DomainDirectory(domain)
        )
        self._round_robin = 0
        self.clients_assigned = 0
        # Junk absorbed from spoofed-source floods (Section VII): the LBs
        # are assumed well-provisioned, so this is bookkeeping, not load.
        self.spoofed_packets = 0.0

    @property
    def replicas(self) -> dict[str, ReplicaServer]:
        """Domain-wide replica registry (shared across co-domain LBs)."""
        return self.directory.replicas

    @property
    def assignments(self) -> dict[str, AssignmentRecord]:
        """Domain-wide sticky-session memory (shared across LBs)."""
        return self.directory.assignments

    # ------------------------------------------------------------------
    # replica registry
    # ------------------------------------------------------------------
    def register_replica(self, replica: ReplicaServer) -> None:
        """Track a newly active replica in this domain."""
        if replica.endpoint.domain != self.domain:
            raise ValueError(
                f"replica {replica.endpoint.address} belongs to domain "
                f"{replica.endpoint.domain}, not {self.domain}"
            )
        self.replicas[replica.endpoint.address] = replica

    def deregister_replica(self, address: str) -> None:
        """Forget a retired replica."""
        self.replicas.pop(address, None)

    def active_replicas(self) -> list[ReplicaServer]:
        """Active replicas in canonical (address-sorted) order.

        Client assignment draws from this list with the session RNG;
        sorting keeps the draw outcome independent of registration
        history.
        """
        return [
            r for _, r in sorted(self.replicas.items()) if r.is_active
        ]

    # ------------------------------------------------------------------
    # client assignment (steps 3-4 of the paper's Figure 1)
    # ------------------------------------------------------------------
    def assign(self, client_id: str, client: object) -> Endpoint | None:
        """Assign a client to a replica and return the redirect target.

        Returns ``None`` when no active replica exists (callers retry
        after a back-off).  Re-entering clients whose previous record has
        not expired are pinned to their recorded replica (Section VII).
        """
        record = self.assignments.get(client_id)
        if record is not None:
            age = self.ctx.now - record.recorded_at
            if age <= self.ctx.config.assignment_memory:
                replica = self.replicas.get(record.replica_address)
                if replica is not None and replica.is_active:
                    replica.admit(client_id, client)
                    return replica.endpoint
            else:
                del self.assignments[client_id]

        candidates = self.active_replicas()
        if not candidates:
            return None
        # Least-loaded assignment keeps regular operation balanced; any
        # load-balancing policy is admissible per the paper.
        replica = min(candidates, key=lambda r: r.n_clients)
        replica.admit(client_id, client)
        self.assignments[client_id] = AssignmentRecord(
            replica_address=replica.endpoint.address,
            recorded_at=self.ctx.now,
        )
        self.clients_assigned += 1
        return replica.endpoint

    def record_shuffle_assignment(
        self, client_id: str, replica: ReplicaServer
    ) -> None:
        """Update sticky memory after the coordinator re-binds a client."""
        self.assignments[client_id] = AssignmentRecord(
            replica_address=replica.endpoint.address,
            recorded_at=self.ctx.now,
        )

    def forget(self, client_id: str) -> None:
        """Explicitly drop a client's sticky record (tests/maintenance)."""
        self.assignments.pop(client_id, None)
