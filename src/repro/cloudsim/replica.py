"""Replica application servers (paper Section III-C).

Each replica is bound to a unique, separately addressable network location,
enforces whitelist-based admission ("only admitting clients whose IPs are
confirmed by the referring load balancer"), and owns two finite resources:

- **ingress bandwidth** (packets/s) — what network floods exhaust.  Floods
  consume bandwidth *whether or not* the sender is whitelisted: filtering
  happens at the server, after the packets have already crossed its link.
- **compute** (work units/s) — what computational DDoS attacks exhaust.
  Only whitelisted traffic reaches application logic, which is why
  computational attacks in this model come from persistent bots acting as
  insiders.

A replica that is overloaded on either resource degrades service: requests
are dropped with probability growing in the overload factor, and response
processing slows down.  Client redirection is prioritized over application
logic (Section III-C), so shuffle notifications still go out from an
overwhelmed replica, only slower.

Traffic accounting on the heavy path is sketched, not enumerated: each
replica folds every request (and attributed flood mass) into a
fixed-memory :class:`repro.detect.SketchWindow`, so it can report *who*
is filling its window — :meth:`ReplicaServer.heavy_hitter_report` — at
a memory cost independent of population size.  Per-client dicts on this
path would grow with the client count, exactly what million-client runs
cannot afford.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..detect import HeavyHitterReport, SketchParams, SketchWindow
from .network import Endpoint, LoadMeter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import CloudContext


__all__ = ["ReplicaState", "ReplicaStats", "ReplicaServer"]


class ReplicaState(enum.Enum):
    """Lifecycle of a replica instance."""

    BOOTING = "booting"
    ACTIVE = "active"
    RETIRED = "retired"  # planned recycle after a shuffle
    FAILED = "failed"  # unplanned crash (see cloudsim.faults)


@dataclass
class ReplicaStats:
    """Counters for one replica's lifetime."""

    requests_served: int = 0
    requests_dropped: int = 0
    requests_rejected: int = 0  # non-whitelisted
    requests_gated: int = 0  # rejected by the trust tier ladder
    flood_packets: float = 0.0
    redirects_sent: int = 0


class ReplicaServer:
    """One replica application server.

    Args:
        ctx: shared simulation context (clock, latency model, rng, config).
        endpoint: the replica's unique network location.
        net_capacity: ingress capacity in packets/second.
        cpu_capacity: compute capacity in work-units/second.
    """

    def __init__(
        self,
        ctx: "CloudContext",
        endpoint: Endpoint,
        net_capacity: float,
        cpu_capacity: float,
    ) -> None:
        self.ctx = ctx
        self.endpoint = endpoint
        self.net_capacity = net_capacity
        self.cpu_capacity = cpu_capacity
        self.state = ReplicaState.BOOTING
        self.whitelist: set[str] = set()
        self.assigned_clients: dict[str, object] = {}
        self.net_meter = LoadMeter(half_life=ctx.config.load_half_life)
        self.cpu_meter = LoadMeter(half_life=ctx.config.load_half_life)
        cfg = ctx.config
        self.traffic = SketchWindow(
            cfg.detect_window,
            params=SketchParams(
                epsilon=cfg.detect_epsilon,
                delta=cfg.detect_delta,
                top_k=cfg.detect_top_k,
            ),
            epochs=cfg.detect_epochs,
        )
        self.stats = ReplicaStats()
        self.shuffling = False  # currently part of a shuffle operation

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Finish booting; the load balancer may now assign clients."""
        self.state = ReplicaState.ACTIVE

    def retire(self) -> None:
        """Take the replica offline and recycle it (Section III-C).

        Retired addresses are null-routed: floods aimed at them are wasted
        botnet effort, which is exactly how the moving target evades naive
        bots.
        """
        self.state = ReplicaState.RETIRED
        self.whitelist.clear()
        self.assigned_clients.clear()
        self.net_meter.reset()
        self.cpu_meter.reset()
        self.traffic.reset()

    def fail(self) -> None:
        """Unplanned crash: the instance vanishes with its state.

        Unlike :meth:`retire`, nothing was migrated first — the bound
        clients discover the loss when their next request dies and
        re-enter through DNS (the same straggler path used for missed
        shuffle redirects).
        """
        self.state = ReplicaState.FAILED
        self.whitelist.clear()
        self.assigned_clients.clear()
        self.net_meter.reset()
        self.cpu_meter.reset()
        self.traffic.reset()

    @property
    def is_active(self) -> bool:
        return self.state is ReplicaState.ACTIVE

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, client_id: str, client: object) -> None:
        """Whitelist a client (called on load-balancer/coordinator
        assignment, step 4 of the paper's Figure 1)."""
        self.whitelist.add(client_id)
        self.assigned_clients[client_id] = client

    def evict(self, client_id: str) -> None:
        """Remove a departed client's whitelist entry and binding."""
        self.whitelist.discard(client_id)
        self.assigned_clients.pop(client_id, None)

    @property
    def n_clients(self) -> int:
        return len(self.assigned_clients)

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def net_utilization(self) -> float:
        """Ingress load as a multiple of capacity (>1 = saturated)."""
        return self.net_meter.rate(self.ctx.now) / self.net_capacity

    def cpu_utilization(self) -> float:
        """Compute load as a multiple of capacity (>1 = saturated)."""
        return self.cpu_meter.rate(self.ctx.now) / self.cpu_capacity

    def overloaded(self) -> bool:
        threshold = self.ctx.config.overload_threshold
        return (
            self.net_utilization() >= threshold
            or self.cpu_utilization() >= threshold
        )

    def drop_probability(self) -> float:
        """Probability an arriving request is dropped, from overload.

        Zero until either resource crosses the overload threshold; then
        rises linearly with the overload factor, saturating at 1.  With a
        threshold of 1.0, a 2x-overloaded replica drops about half its
        load — the qualitative behaviour of a saturated link/queue.
        """
        factor = max(self.net_utilization(), self.cpu_utilization())
        threshold = self.ctx.config.overload_threshold
        if factor < threshold:
            return 0.0
        return min(1.0, (factor - threshold) / max(factor, 1e-12))

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def receive_flood(self, packets: float, source: str | None = None) -> None:
        """Absorb flood packets (spent bandwidth, filtered before app).

        Args:
            packets: flood mass landing now.
            source: optional attributed sender (the aggregate naive
                fleet passes its collective label); attributed mass
                shows up in :meth:`heavy_hitter_report`.
        """
        if self.state is ReplicaState.RETIRED:
            return  # null-routed: the attacker wasted these packets
        self.net_meter.add(self.ctx.now, packets)
        self.stats.flood_packets += packets
        whole = int(packets)
        if whole > 0:
            self.traffic.record(
                self.ctx.now, admitted=False, key=source, count=whole
            )

    def handle_request(
        self,
        client_id: str,
        work: float,
        on_done: Callable[[bool, float], None],
    ) -> None:
        """Process an application request arriving *now*.

        Args:
            client_id: requester identity (source IP in the paper).
            work: compute cost in work units (attack requests cost more).
            on_done: callback ``(served, service_time)`` invoked
                immediately; the caller schedules its own response-network
                latency.
        """
        if self.state is not ReplicaState.ACTIVE:
            on_done(False, 0.0)
            return
        self.net_meter.add(self.ctx.now, 1.0)
        if client_id not in self.whitelist:
            self.stats.requests_rejected += 1
            self.traffic.record(self.ctx.now, admitted=False, key=client_id)
            on_done(False, 0.0)
            return
        trust = self.ctx.trust
        if trust is not None and trust.admit_decision(client_id) != "ok":
            # Tier gate (mirrors the live service's backends): a policy
            # rejection, not overload — no compute is spent, but the
            # request still lands in the traffic window so a gated
            # flood keeps registering as saturation, and the outcome
            # is a non-violation observation (the gate itself must not
            # spiral trust downward).
            self.stats.requests_gated += 1
            self.traffic.record(self.ctx.now, admitted=False, key=client_id)
            trust.observe(client_id, self.ctx.now, violation=False)
            on_done(False, 0.0)
            return
        if self.ctx.rng.random() < self.drop_probability():
            self.stats.requests_dropped += 1
            self.traffic.record(self.ctx.now, admitted=False, key=client_id)
            if trust is not None:
                # An overload drop is the violation signal: the client
                # (or its cohort) outran the replica's capacity.
                trust.observe(client_id, self.ctx.now, violation=True)
            on_done(False, 0.0)
            return
        self.traffic.record(self.ctx.now, admitted=True, key=client_id)
        if trust is not None:
            trust.observe(client_id, self.ctx.now, violation=False)
        self.cpu_meter.add(self.ctx.now, work)
        base = work / self.cpu_capacity
        # Service slows as the CPU saturates (simple M/M/1-flavoured
        # inflation, capped to keep the simulation stable).
        utilization = min(self.cpu_utilization(), 0.95)
        service_time = base / max(1e-6, (1.0 - utilization))
        self.stats.requests_served += 1
        on_done(True, service_time)

    def heavy_hitter_report(self) -> HeavyHitterReport:
        """Who filled this replica's window (fixed-memory attribution).

        The coordinator traces these for attacked replicas (event kind
        ``heavy_hitters``), putting names next to the saturation signal
        in the audit trail.
        """
        now = self.ctx.now
        total, throttled = self.traffic.counts(now)
        return HeavyHitterReport(
            replica_id=self.endpoint.address,
            time=now,
            window=self.traffic.window,
            total=total,
            throttled=throttled,
            top=tuple(self.traffic.heavy_hitters(now)),
            state_bytes=self.traffic.state_bytes(),
        )

    # ------------------------------------------------------------------
    # shuffling support
    # ------------------------------------------------------------------
    def push_redirect(
        self,
        client_id: str,
        new_endpoint: Endpoint,
        deliver: Callable[[str, Endpoint], None],
        position: int,
    ) -> None:
        """Send one WebSocket redirect notification (Section VI-B).

        The prototype's server is single-threaded, so notifications go out
        serially: the ``position``-th client waits ``position`` service
        slots before its push even leaves the replica.  Redirection is
        prioritized traffic but still slows down under overload.
        """
        cfg = self.ctx.config
        per_push = self.ctx.rng.uniform(
            cfg.redirect_service_min, cfg.redirect_service_max
        )
        overload_penalty = 1.0 + min(
            2.0, max(0.0, self.net_utilization() - 1.0)
        )
        send_delay = position * per_push * overload_penalty
        self.stats.redirects_sent += 1
        self.ctx.sim.schedule(
            send_delay,
            lambda: deliver(client_id, new_endpoint),
            label=f"redirect:{client_id}",
        )
