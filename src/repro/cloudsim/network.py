"""Network latency and capacity model for the cloud simulation.

The paper's architecture spans multiple *cloud domains* — "groups of
separately managed cloud servers that do not share common bottleneck
links" (Section III-B).  We model:

- **propagation latency** between any two endpoints as a lognormal draw
  whose median depends on whether the endpoints share a domain (intra-DC
  round trips are sub-millisecond; wide-area ones tens of milliseconds);
- **per-replica ingress bandwidth**, the resource network DDoS floods
  exhaust; and
- **per-replica compute capacity**, the resource computational DDoS
  attacks exhaust.

Capacity is tracked with exponentially-decayed load accumulators
(:class:`LoadMeter`), a standard way to get smooth utilization estimates
out of a DES without fixed-size sampling windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencyModel", "LoadMeter", "Endpoint"]


@dataclass(frozen=True)
class Endpoint:
    """A network-addressable entity: ``(domain, address)``.

    ``address`` plays the role of the paper's "unique public DNS name or IP
    address"; moving a service to a new replica means handing clients a new
    ``Endpoint``.
    """

    domain: str
    address: str

    def same_domain(self, other: "Endpoint") -> bool:
        return self.domain == other.domain


@dataclass
class LatencyModel:
    """Lognormal one-way latencies with intra/inter-domain medians.

    Attributes:
        intra_domain_median: median one-way delay within a cloud domain.
        inter_domain_median: median one-way delay across domains / from
            Internet clients to a domain.
        sigma: lognormal shape (spread) parameter.
    """

    intra_domain_median: float = 0.0005
    inter_domain_median: float = 0.040
    sigma: float = 0.35

    def one_way(
        self,
        src: Endpoint,
        dst: Endpoint,
        rng: np.random.Generator,
    ) -> float:
        """Sample a one-way delay between two endpoints."""
        median = (
            self.intra_domain_median
            if src.same_domain(dst)
            else self.inter_domain_median
        )
        return float(rng.lognormal(math.log(median), self.sigma))

    def round_trip(
        self,
        src: Endpoint,
        dst: Endpoint,
        rng: np.random.Generator,
    ) -> float:
        """Sample a full round trip (two independent one-way draws)."""
        return self.one_way(src, dst, rng) + self.one_way(dst, src, rng)


@dataclass
class LoadMeter:
    """Exponentially-decayed load accumulator.

    ``add(now, amount)`` records ``amount`` units of work (packets, request
    cost, bytes) at simulation time ``now``; ``rate(now)`` returns the
    decayed average rate in units/second.  ``half_life`` controls how fast
    history fades — the detection window of the paper's "sudden network
    congestion / abrupt surge of application traffic" indicators.
    """

    half_life: float = 2.0
    _value: float = field(default=0.0, init=False)
    _last: float = field(default=0.0, init=False)

    def _decay(self, now: float) -> None:
        if now < self._last - 1e-9:
            raise ValueError(
                f"LoadMeter time went backwards: {now} < {self._last}"
            )
        now = max(now, self._last)
        if now > self._last:
            factor = 0.5 ** ((now - self._last) / self.half_life)
            self._value *= factor
            self._last = now

    def add(self, now: float, amount: float) -> None:
        """Record ``amount`` units of instantaneous work at ``now``."""
        self._decay(now)
        self._value += amount

    def rate(self, now: float) -> float:
        """Decayed average rate in units/second.

        The accumulator integrates to ``amount * half_life / ln 2`` for a
        single burst, so dividing by that horizon yields a rate estimate.
        """
        self._decay(now)
        horizon = self.half_life / math.log(2)
        return self._value / horizon

    def reset(self) -> None:
        self._value = 0.0
