"""The coordination server (paper Section III-D).

The coordinator is the defense's central controller: it tracks global
client-to-server bindings, monitors which replicas are under attack, and —
when attacks are detected — executes the moving-target reaction:

1. instantiate fresh replica servers at new network locations,
2. run the shuffle planner (greedy + attack-scale estimation) to decide
   *how many* clients each replacement replica receives,
3. have the attacked replicas push WebSocket redirects to their clients
   (prioritized over application logic), and
4. retire and recycle the attacked replicas once migration completes.

It communicates over a command-and-control channel that clients cannot
reach, so it is not itself attackable in this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.api import EstimateRequest, estimate as estimate_bots
from ..core.greedy import greedy_sizes
from .network import Endpoint
from .replica import ReplicaServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import CloudContext

__all__ = ["ShuffleRecord", "Coordinator"]


@dataclass
class ShuffleRecord:
    """Audit record of one shuffle operation."""

    started_at: float
    completed_at: float | None
    attacked_replicas: tuple[str, ...]
    n_clients: int
    estimated_bots: int
    group_sizes: tuple[int, ...]
    new_replicas: tuple[str, ...]


class Coordinator:
    """Central controller driving detection and shuffling."""

    def __init__(self, ctx: "CloudContext") -> None:
        self.ctx = ctx
        self.shuffles: list[ShuffleRecord] = []
        self._shuffle_in_progress = False
        self._monitoring = False
        self._replica_counter = 0
        # Hot spares (Section III-C): pre-booted replicas kept out of the
        # load balancers until a shuffle claims them, eliminating the
        # boot delay from the critical path.
        self._spares: list[ReplicaServer] = []

    # ------------------------------------------------------------------
    # hot spares
    # ------------------------------------------------------------------
    def provision_spares(self, count: int) -> None:
        """Pre-boot ``count`` spare replicas for instant substitution."""
        for index in range(count):
            domain = self.ctx.domains[index % len(self.ctx.domains)]
            replica = self._spare_replica(domain)
            self._spares.append(replica)

    def _spare_replica(self, domain: str) -> ReplicaServer:
        cfg = self.ctx.config
        self._replica_counter += 1
        endpoint = Endpoint(
            domain=domain, address=f"replica-{self._replica_counter}"
        )
        replica = ReplicaServer(
            self.ctx,
            endpoint,
            net_capacity=cfg.replica_net_capacity,
            cpu_capacity=cfg.replica_cpu_capacity,
        )
        # Spares boot in the background but stay *hidden*: they are only
        # registered with a load balancer when a shuffle claims them, so
        # their addresses remain unadvertised.
        self.ctx.sim.schedule(
            cfg.boot_delay,
            replica.activate,
            label=f"boot-spare:{endpoint.address}",
        )
        self.ctx.register_hidden_replica(replica)
        return replica

    def _claim_spare(self) -> ReplicaServer | None:
        """Take one booted spare off the shelf, if available."""
        for index, replica in enumerate(self._spares):
            if replica.is_active:
                claimed = self._spares.pop(index)
                balancer = self.ctx.balancers.get(
                    claimed.endpoint.domain
                )
                if balancer is not None:
                    balancer.register_replica(claimed)
                return claimed
        return None

    @property
    def spare_count(self) -> int:
        return len(self._spares)

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------
    def new_replica(self, domain: str, boot_delay: float | None = None,
                    activate_now: bool = False) -> ReplicaServer:
        """Instantiate a replica at a fresh, unadvertised address."""
        cfg = self.ctx.config
        self._replica_counter += 1
        endpoint = Endpoint(
            domain=domain, address=f"replica-{self._replica_counter}"
        )
        replica = ReplicaServer(
            self.ctx,
            endpoint,
            net_capacity=cfg.replica_net_capacity,
            cpu_capacity=cfg.replica_cpu_capacity,
        )
        self.ctx.register_replica(replica)
        if activate_now:
            replica.activate()
        else:
            delay = boot_delay if boot_delay is not None else cfg.boot_delay
            self.ctx.sim.schedule(delay, replica.activate,
                                  label=f"boot:{endpoint.address}")
        return replica

    # ------------------------------------------------------------------
    # detection loop
    # ------------------------------------------------------------------
    def start_monitoring(self) -> None:
        """Begin the periodic attack-detection sweep."""
        if self._monitoring:
            return
        self._monitoring = True
        self.ctx.sim.schedule(
            self.ctx.config.detection_interval, self._sweep, label="detect"
        )

    def stop_monitoring(self) -> None:
        self._monitoring = False

    def attacked_replicas(self) -> list[ReplicaServer]:
        """Replicas whose load indicators exceed the overload threshold.

        This is the paper's observable attack signal: sudden congestion
        (ingress meter) or an application-traffic surge (CPU meter).
        """
        return [
            replica
            for replica in self.ctx.active_replicas()
            if replica.overloaded()
        ]

    def _sweep(self) -> None:
        if not self._monitoring:
            return
        self._heal()
        if not self._shuffle_in_progress:
            attacked = self.attacked_replicas()
            if attacked:
                self._start_shuffle(attacked)
        self.ctx.sim.schedule(
            self.ctx.config.detection_interval, self._sweep, label="detect"
        )

    def _heal(self) -> None:
        """Restore per-domain capacity after unplanned replica failures.

        Crashed instances leave the balancer with fewer replicas than the
        configured baseline; the coordinator boots replacements.  Planned
        retirements are not healed here — the shuffle that caused them
        already provisioned substitutes.
        """
        baseline = self.ctx.config.initial_replicas_per_domain
        # Canonical domain/address order: replacement boots and
        # scale-down retirements must not depend on mapping history.
        for domain, balancer in sorted(self.ctx.balancers.items()):
            live = [
                replica
                for _, replica in sorted(balancer.replicas.items())
                if replica.state.value in ("active", "booting")
            ]
            for _ in range(max(0, baseline - len(live))):
                self.new_replica(domain)
            if self._shuffle_in_progress:
                continue
            # Scale back down when over baseline (paper: "scale down to a
            # small number of server instances when not under attack"):
            # retire idle, client-free, unattacked extras.
            excess = len(live) - baseline
            for replica in live:
                if excess <= 0:
                    break
                if (
                    replica.is_active
                    and replica.n_clients == 0
                    and not replica.overloaded()
                    and not replica.shuffling
                ):
                    self.ctx.retire_replica(replica)
                    excess -= 1

    # ------------------------------------------------------------------
    # shuffle operation
    # ------------------------------------------------------------------
    def _start_shuffle(self, attacked: list[ReplicaServer]) -> None:
        """Plan and launch one shuffle of the attacked replicas' clients."""
        cfg = self.ctx.config
        self._shuffle_in_progress = True
        self.ctx.trace(
            "attack_detected",
            replicas=[r.endpoint.address for r in attacked],
        )
        # Put names next to the signal: each attacked replica reports
        # who filled its window (fixed-memory sketch attribution).
        for replica in attacked:
            self.ctx.trace(
                "heavy_hitters", **replica.heavy_hitter_report().to_dict()
            )
        if self.ctx.trust is not None:
            # And the trust ladder's view of each attacked cohort: how
            # many of its whitelisted clients sit in which tier.
            for replica in attacked:
                cohort = sorted(replica.whitelist)
                self.ctx.trace(
                    "trust_snapshot",
                    replica=replica.endpoint.address,
                    clients=len(cohort),
                    tiers=self.ctx.trust.tier_counts(cohort),
                    mean_trust=self.ctx.trust.mean_trust(cohort),
                )

        clients: list[tuple[str, object, ReplicaServer]] = []
        for replica in attacked:
            replica.shuffling = True
            # Canonical client order before the rng.shuffle below: the
            # permutation consumed must not depend on admission history.
            for client_id, client in sorted(
                replica.assigned_clients.items()
            ):
                clients.append((client_id, client, replica))
        n_clients = len(clients)

        # Attack-scale estimation from the observable signal: how many of
        # the currently active replicas are attacked, given the current
        # client spread (Section V).  The moment estimator keeps the
        # control loop cheap; see repro.core.estimator for the exact MLE.
        active = self.ctx.active_replicas()
        estimate = estimate_bots(
            EstimateRequest(
                n_attacked=len(attacked),
                n_replicas=max(len(active), 1),
                upper_bound=max(n_clients, len(attacked)),
                method="moment",
            )
        )
        believed_bots = min(max(estimate.m_hat, 1), max(n_clients, 1))

        record = ShuffleRecord(
            started_at=self.ctx.now,
            completed_at=None,
            attacked_replicas=tuple(
                r.endpoint.address for r in attacked
            ),
            n_clients=n_clients,
            estimated_bots=believed_bots,
            group_sizes=(),
            new_replicas=(),
        )
        self.shuffles.append(record)

        if n_clients == 0:
            # Nothing to migrate: just replace the attacked instances.
            self._finish_shuffle(attacked, [], record)
            return

        n_new = min(cfg.shuffle_replicas, n_clients)
        sizes = greedy_sizes(n_clients, believed_bots, n_new)
        record.group_sizes = tuple(sizes)

        # Claim pre-booted hot spares first (Section III-C), then boot
        # whatever is still missing, spread across domains so no single
        # bottleneck link carries the whole shuffle set.
        new_replicas: list[ReplicaServer] = []
        while len(new_replicas) < n_new:
            spare = self._claim_spare()
            if spare is None:
                break
            new_replicas.append(spare)
        booted = 0
        domains = self.ctx.domains
        while len(new_replicas) < n_new:
            new_replicas.append(
                self.new_replica(domains[booted % len(domains)])
            )
            booted += 1
        record.new_replicas = tuple(
            r.endpoint.address for r in new_replicas
        )
        self.ctx.trace(
            "shuffle_started",
            n_clients=n_clients,
            estimated_bots=believed_bots,
            group_sizes=list(sizes),
            spares_used=n_new - booted,
            new_replicas=list(record.new_replicas),
        )

        # Migration can start as soon as every replacement is up: spares
        # are ready immediately, freshly booted instances need the delay.
        wait = cfg.boot_delay + 1e-3 if booted else 1e-3
        self.ctx.sim.schedule(
            wait,
            lambda: self._migrate(clients, sizes, new_replicas,
                                  attacked, record),
            label="migrate",
        )

    def _migrate(
        self,
        clients: list[tuple[str, object, ReplicaServer]],
        sizes: list[int],
        new_replicas: list[ReplicaServer],
        attacked: list[ReplicaServer],
        record: ShuffleRecord,
    ) -> None:
        """Randomly partition clients per the plan and push redirects."""
        order = list(clients)
        self.ctx.rng.shuffle(order)

        # Per-old-replica serialization position: the single-threaded
        # redirect pipeline of Section VI-B.
        positions: dict[str, int] = {}
        cursor = 0
        for replica, size in zip(new_replicas, sizes):
            for _ in range(size):
                client_id, client, old_replica = order[cursor]
                cursor += 1
                replica.admit(client_id, client)
                self.ctx.record_binding(client_id, replica)
                position = positions.get(old_replica.endpoint.address, 0)
                positions[old_replica.endpoint.address] = position + 1
                old_replica.push_redirect(
                    client_id,
                    replica.endpoint,
                    deliver=self._deliver_redirect_factory(client),
                    position=position,
                )
        assert cursor == len(order), "plan sizes must cover every client"

        grace = self.ctx.config.migration_grace
        self.ctx.sim.schedule(
            grace,
            lambda: self._finish_shuffle(attacked, new_replicas, record),
            label="retire",
        )

    def _deliver_redirect_factory(self, client):
        """Wrap client redirect delivery with client-side network latency."""

        def deliver(client_id: str, new_endpoint: Endpoint) -> None:
            one_way = self.ctx.latency.one_way(
                new_endpoint, client.endpoint, self.ctx.rng
            )
            self.ctx.sim.schedule(
                one_way,
                lambda: client.receive_redirect(new_endpoint),
                label=f"redirect-net:{client_id}",
            )

        return deliver

    def _finish_shuffle(
        self,
        attacked: list[ReplicaServer],
        new_replicas: list[ReplicaServer],
        record: ShuffleRecord,
    ) -> None:
        """Retire the attacked replicas and close the operation."""
        for replica in attacked:
            self.ctx.retire_replica(replica)
            self.ctx.trace(
                "replica_retired", address=replica.endpoint.address
            )
        record.completed_at = self.ctx.now
        self.ctx.trace(
            "shuffle_completed",
            duration=record.completed_at - record.started_at,
            n_clients=record.n_clients,
        )
        obs = self.ctx.instruments
        if obs is not None:
            obs.registry.counter(
                "cloudsim_shuffles_total",
                "Completed shuffle operations.",
            ).inc()
            obs.registry.histogram(
                "cloudsim_shuffle_duration_seconds",
                "Sim-time duration of a shuffle from start to last "
                "retirement.",
                buckets=(1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0),
            ).observe(record.completed_at - record.started_at)
            obs.registry.gauge(
                "cloudsim_active_replicas",
                "Replicas serving clients after the shuffle.",
            ).set(float(len(self.ctx.active_replicas())))
        self._shuffle_in_progress = False
        # Replenish the hot-spare shelf for the next round.
        deficit = self.ctx.config.hot_spares - self.spare_count
        if deficit > 0:
            self.provision_spares(deficit)

    @property
    def shuffle_count(self) -> int:
        return len(self.shuffles)
