"""Deprecated shim: tracing has moved to :mod:`repro.obs`.

The structured event tracing that used to live here is now the shared
observability layer's :class:`repro.obs.Event` / :class:`repro.obs.
EventLog` — one schema across cloudsim, the live service, and the
runtime.  This module keeps the historical import path and constructor
working:

- ``TraceEvent`` *is* :class:`repro.obs.Event` (the ``source`` field is
  new and optional; without it the JSONL output is byte-identical to
  the legacy format).
- ``Tracer`` subclasses :class:`repro.obs.EventLog` with the legacy
  constructor signature and emits a :class:`DeprecationWarning` on
  construction.

New code should use ``repro.obs`` directly::

    from repro.obs import EventLog
    log = EventLog(source="cloudsim")
    system.ctx.attach_tracer(log)
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable

from ..obs.events import Event, EventLog

__all__ = ["TraceEvent", "Tracer"]

#: The canonical event record — re-exported under its historical name.
TraceEvent = Event


class Tracer(EventLog):
    """Deprecated alias of :class:`repro.obs.EventLog`.

    Accepts the legacy ``(kinds, capacity, events, dropped)``
    constructor and behaves identically; emits a
    :class:`DeprecationWarning` pointing at the new home.
    """

    def __init__(
        self,
        kinds: frozenset[str] | None = None,
        capacity: int | None = None,
        events: Iterable[Event] | None = None,
        dropped: int = 0,
        **kwargs: Any,
    ) -> None:
        warnings.warn(
            "repro.cloudsim.trace.Tracer is deprecated; use "
            "repro.obs.EventLog (same behaviour, shared schema)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            kinds=kinds,
            capacity=capacity,
            events=list(events) if events is not None else [],
            dropped=dropped,
            **kwargs,
        )
