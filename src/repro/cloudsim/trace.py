"""Structured event tracing for the cloud simulation.

A production deployment of the paper's defense would need an audit trail:
when was an attack detected, which replicas were recycled, how long did
each migration take, which clients moved where.  :class:`Tracer` collects
typed, timestamped records from the simulated components and can export
them as JSON-lines for offline analysis.

Tracing is opt-in (``CloudContext.attach_tracer``) and zero-cost when
disabled: emit sites call :meth:`CloudContext.trace`, which is a no-op
without an attached tracer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence in the simulation."""

    time: float
    kind: str
    data: dict[str, Any]

    def to_json(self) -> str:
        return json.dumps(
            {"time": round(self.time, 6), "kind": self.kind, **self.data},
            sort_keys=True,
        )


@dataclass
class Tracer:
    """Collects :class:`TraceEvent` records in arrival order.

    Args:
        kinds: optional allow-list; events of other kinds are dropped at
            the emit site (useful to trace only shuffles in long runs).
        capacity: optional cap on retained events (oldest dropped first),
            bounding memory in very long simulations.
    """

    kinds: frozenset[str] | None = None
    capacity: int | None = None
    events: list[TraceEvent] = field(default_factory=list)
    dropped: int = 0

    def emit(self, time: float, kind: str, **data: Any) -> None:
        """Record one event (subject to the kind filter and capacity)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        self.events.append(TraceEvent(time=time, kind=kind, data=data))
        if self.capacity is not None and len(self.events) > self.capacity:
            overflow = len(self.events) - self.capacity
            del self.events[:overflow]
            self.dropped += overflow

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All retained events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def between(self, start: float, end: float) -> Iterator[TraceEvent]:
        """Events with ``start <= time <= end``."""
        return (
            event for event in self.events if start <= event.time <= end
        )

    def to_jsonl(self) -> str:
        """Export every retained event as JSON-lines."""
        return "\n".join(event.to_json() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)
