"""Wiring: the full Section III architecture as one simulated system.

:class:`CloudDefenseSystem` assembles DNS, per-domain load balancers,
replica servers, the coordination server, the botnet, and the client
population into a single discrete-event run, and reports both defense-side
(shuffles, replicas recycled, attacker quarantine) and client-side (QoS
timeline) outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..detect import SpaceSaving
from ..obs.events import EventLog
from ..obs.instruments import Instruments
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder
from ..trust import TrustConfig, TrustManager
from .botnet import Botnet
from .clients import BenignClient, OnOffBot, PersistentBot
from .coordinator import Coordinator
from .dns import DnsServer
from .engine import Simulator
from .loadbalancer import LoadBalancer
from .metrics import MetricsCollector
from .network import Endpoint, LatencyModel
from .replica import ReplicaServer

__all__ = ["CloudConfig", "CloudContext", "CloudDefenseSystem", "RunReport"]


@dataclass
class CloudConfig:
    """All tunables of the cloud simulation in one place.

    Defaults model a medium web service protected across two cloud domains;
    every value is per the paper's qualitative description (no proprietary
    constants exist to copy).
    """

    # topology
    n_domains: int = 2
    balancers_per_domain: int = 1
    initial_replicas_per_domain: int = 2
    # replica capacity
    replica_net_capacity: float = 5_000.0  # packets/s ingress
    replica_cpu_capacity: float = 200.0  # work units/s
    load_half_life: float = 2.0
    overload_threshold: float = 1.0
    # defense reaction
    shuffle_replicas: int = 8  # P: replacement replicas per shuffle
    hot_spares: int = 0  # pre-booted spare replicas (Section III-C)
    boot_delay: float = 3.0  # cloud instance spin-up
    detection_interval: float = 1.0
    migration_grace: float = 5.0  # old replicas linger for stragglers
    redirect_service_min: float = 0.02  # per-client WS push service time
    redirect_service_max: float = 0.06
    assignment_memory: float = 300.0  # sticky re-entry window (Sec. VII)
    join_retry_delay: float = 1.0
    # sketch-based traffic accounting (repro.detect): every replica
    # tracks who is filling its window in fixed memory, independent of
    # population size — the piece that keeps million-client runs flat.
    detect_window: float = 4.0  # sliding window (sim-seconds)
    detect_epsilon: float = 0.02  # count-min additive error budget
    detect_delta: float = 0.01  # count-min failure probability
    detect_top_k: int = 8  # heavy-hitter summary capacity
    detect_epochs: int = 4  # window ring cells
    # per-client trust profiles (repro.trust): graduated admission
    # ladder mirrored from the live service; off by default so the
    # historical simulation dynamics are untouched.
    trust_enabled: bool = False
    # workload
    think_time: float = 2.0  # mean seconds between benign requests
    request_work: float = 1.0
    attack_work: float = 25.0  # computational-attack request cost
    attack_think_time: float = 0.2  # computational bots hammer much faster
    reveal_delay: float = 1.0  # persistent bot: assignment -> reveal
    naive_pps: float = 30_000.0  # aggregate naive-bot flood
    botnet_propagation_delay: float = 2.0
    metrics_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.n_domains < 1:
            raise ValueError("need at least one cloud domain")
        if self.balancers_per_domain < 1:
            raise ValueError("need at least one balancer per domain")
        if self.shuffle_replicas < 1:
            raise ValueError("need at least one shuffle replica")
        if self.detect_window <= 0:
            raise ValueError("detect_window must be > 0")
        if self.detect_top_k < 1 or self.detect_epochs < 1:
            raise ValueError("detect_top_k and detect_epochs must be >= 1")


class CloudContext:
    """Shared context handed to every simulated component."""

    def __init__(self, config: CloudConfig, seed: int = 0) -> None:
        self.config = config
        self.sim = Simulator()
        self.rng = np.random.default_rng(seed)
        self.latency = LatencyModel()
        self.dns = DnsServer()
        self.domains = [f"cloud-{i}" for i in range(config.n_domains)]
        # Primary balancer per domain; co-domain frontends share its
        # directory and live in ``domain_balancers``.
        self.balancers: dict[str, LoadBalancer] = {}
        self.domain_balancers: dict[str, list[LoadBalancer]] = {}
        self._replicas: dict[str, ReplicaServer] = {}
        #: shared trust ladder (sim-time clocked) when enabled; the
        #: replicas gate whitelisted requests through it exactly like
        #: the live service's backends.
        self.trust: TrustManager | None = (
            TrustManager(TrustConfig(seed=seed))
            if config.trust_enabled
            else None
        )
        self.coordinator = Coordinator(self)
        self.metrics = MetricsCollector(self, config.metrics_interval)
        self.tracer = None
        self.instruments: Instruments | None = None

    def attach_tracer(self, tracer) -> None:
        """Enable structured event tracing (a :class:`repro.obs.
        EventLog`, or the deprecated ``cloudsim.trace.Tracer``)."""
        self.tracer = tracer

    def attach_instruments(
        self, instruments: Instruments | None = None
    ) -> Instruments:
        """Enable the unified observability layer on this context.

        With no argument, builds an :class:`repro.obs.Instruments`
        bundle whose span recorder runs on **sim-time** (``ctx.now``),
        so spans and events line up with the DES timeline and no
        wall-clock enters the simulation (reprolint P4).  Every
        :meth:`trace` call then also increments the
        ``cloudsim_events_total`` counter, and the coordinator records
        shuffle metrics.
        """
        if instruments is None:
            instruments = Instruments(
                registry=MetricsRegistry(),
                spans=SpanRecorder(clock=lambda: self.sim.now),
                events=EventLog(source="cloudsim"),
            )
        self.instruments = instruments
        return instruments

    def trace(self, kind: str, **data) -> None:
        """Emit a trace event; a no-op unless a tracer (or the
        instruments bundle) is attached."""
        if self.tracer is not None:
            self.tracer.emit(self.now, kind, **data)
        if self.instruments is not None:
            self.instruments.events.emit(self.now, kind, **data)
            self.instruments.registry.counter(
                "cloudsim_events_total",
                "Structured simulation events by kind.",
                ("kind",),
            ).inc(kind=kind)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------------
    # replica registry
    # ------------------------------------------------------------------
    def register_replica(self, replica: ReplicaServer) -> None:
        self._replicas[replica.endpoint.address] = replica
        balancer = self.balancers.get(replica.endpoint.domain)
        if balancer is not None:
            balancer.register_replica(replica)

    def register_hidden_replica(self, replica: ReplicaServer) -> None:
        """Track a replica without advertising it to any load balancer.

        Used for hot spares: their addresses stay unpublished until a
        shuffle claims them.
        """
        self._replicas[replica.endpoint.address] = replica

    def retire_replica(self, replica: ReplicaServer) -> None:
        replica.retire()
        balancer = self.balancers.get(replica.endpoint.domain)
        if balancer is not None:
            balancer.deregister_replica(replica.endpoint.address)

    def fail_replica(self, replica: ReplicaServer) -> None:
        """Crash a replica (fault injection); see cloudsim.faults."""
        replica.fail()
        balancer = self.balancers.get(replica.endpoint.domain)
        if balancer is not None:
            balancer.deregister_replica(replica.endpoint.address)

    def replica_by_address(self, address: str) -> ReplicaServer | None:
        return self._replicas.get(address)

    def replica_at(self, endpoint: Endpoint) -> ReplicaServer | None:
        return self._replicas.get(endpoint.address)

    def active_replicas(self) -> list[ReplicaServer]:
        """Active replicas in canonical (address-sorted) order, so the
        detection sweep and shuffle planning see a history-independent
        replica sequence."""
        return [
            r for _, r in sorted(self._replicas.items()) if r.is_active
        ]

    def all_replicas(self) -> list[ReplicaServer]:
        return list(self._replicas.values())

    def record_binding(self, client_id: str, replica: ReplicaServer) -> None:
        """Refresh sticky-session memory after a shuffle re-binding."""
        for _, balancer in sorted(self.balancers.items()):
            if client_id in balancer.assignments:
                balancer.record_shuffle_assignment(client_id, replica)


@dataclass
class RunReport:
    """Outcome of one end-to-end cloud simulation."""

    duration: float
    shuffles: int
    replicas_recycled: int
    benign_success_overall: float
    benign_success_last_quarter: float
    benign_mean_latency: float
    benign_migrations: float
    naive_waste_ratio: float
    quarantined_bots: int
    bots_colocated_benign: int
    samples: list = field(default_factory=list)
    #: merged top talkers across active replicas at run end, as
    #: ``[key, count, error]`` rows (sketch-windowed, so only traffic
    #: still inside the detection window shows up).
    heavy_hitters: list = field(default_factory=list)
    #: trust-tier census over every profiled client at run end
    #: (``None`` when the trust ladder is disabled).
    trust_tiers: dict | None = None

    def describe(self) -> str:
        return (
            f"RunReport(duration={self.duration:.0f}s "
            f"shuffles={self.shuffles} "
            f"recycled={self.replicas_recycled} "
            f"benign_ok={self.benign_success_overall:.1%} "
            f"benign_ok_tail={self.benign_success_last_quarter:.1%} "
            f"naive_waste={self.naive_waste_ratio:.1%})"
        )


class CloudDefenseSystem:
    """Facade: build the architecture, admit a population, run, report."""

    def __init__(self, config: CloudConfig | None = None, seed: int = 0) -> None:
        self.config = config or CloudConfig()
        self.ctx = CloudContext(self.config, seed=seed)
        self.botnet = Botnet(
            self.ctx,
            naive_pps=self.config.naive_pps,
            propagation_delay=self.config.botnet_propagation_delay,
        )
        self.benign: list[BenignClient] = []
        self.bots: list[PersistentBot] = []
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Stand up DNS, load balancers, and the initial replica set."""
        if self._built:
            return
        ctx = self.ctx
        for domain in ctx.domains:
            frontends = []
            directory = None
            for index in range(self.config.balancers_per_domain):
                balancer = LoadBalancer(
                    ctx, domain, index=index, directory=directory
                )
                directory = balancer.directory  # shared by the rest
                frontends.append(balancer)
                ctx.dns.register(balancer)
            ctx.balancers[domain] = frontends[0]
            ctx.domain_balancers[domain] = frontends
        for domain in ctx.domains:
            for _ in range(self.config.initial_replicas_per_domain):
                ctx.coordinator.new_replica(domain, activate_now=True)
        if self.config.hot_spares > 0:
            ctx.coordinator.provision_spares(self.config.hot_spares)
        ctx.coordinator.start_monitoring()
        ctx.metrics.start()
        self.botnet.start()
        self._built = True

    def add_benign_clients(self, count: int, prefix: str = "user") -> None:
        """Create benign clients that join at randomized times."""
        self.build()
        for index in range(count):
            client = BenignClient(self.ctx, f"{prefix}-{index}")
            self.benign.append(client)
            self._schedule_join(client)

    def add_persistent_bots(
        self,
        count: int,
        computational: bool = False,
        on_off: bool = False,
        off_duration: float = 30.0,
        prefix: str = "bot",
    ) -> None:
        """Create persistent bots (optionally computational or on-off)."""
        self.build()
        for index in range(count):
            client_id = f"{prefix}-{index}"
            if on_off:
                bot: PersistentBot = OnOffBot(
                    self.ctx, client_id, self.botnet,
                    off_duration=off_duration,
                )
            else:
                bot = PersistentBot(
                    self.ctx, client_id, self.botnet,
                    computational=computational,
                )
            self.bots.append(bot)
            self._schedule_join(bot)

    def _schedule_join(self, client: BenignClient) -> None:
        delay = float(self.ctx.rng.uniform(0.0, 2.0))
        self.ctx.sim.schedule(delay, client.join,
                              label=f"enter:{client.client_id}")

    def enable_churn(
        self,
        arrival_rate: float,
        mean_session: float = 120.0,
    ) -> None:
        """Benign client churn: Poisson arrivals, exponential sessions.

        The paper's simulations include ongoing benign arrivals (Section
        VI-A); in the architecture simulation churn additionally exercises
        the load balancers' sticky-session memory and the whitelists'
        admit/evict cycle.

        Args:
            arrival_rate: mean new benign clients per second.
            mean_session: mean session length before a client leaves.
        """
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.build()
        tick = 1.0
        counter = [0]

        def arrivals() -> None:
            count = int(self.ctx.rng.poisson(arrival_rate * tick))
            for _ in range(count):
                counter[0] += 1
                client = BenignClient(
                    self.ctx, f"churn-{counter[0]}"
                )
                self.benign.append(client)
                client.join()
                session = float(self.ctx.rng.exponential(mean_session))
                self.ctx.sim.schedule(
                    session, client.leave,
                    label=f"depart:{client.client_id}",
                )
            self.ctx.sim.schedule(tick, arrivals, label="churn")

        self.ctx.sim.schedule(tick, arrivals, label="churn")

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, duration: float, max_events: int = 5_000_000) -> RunReport:
        """Advance the simulation ``duration`` seconds and summarize."""
        self.build()
        self.ctx.sim.run_until(self.ctx.sim.now + duration,
                               max_events=max_events)
        return self.report(duration)

    def report(self, duration: float) -> RunReport:
        """Aggregate defense- and client-side outcomes."""
        ctx = self.ctx
        metrics = ctx.metrics
        recycled = sum(
            1 for r in ctx.all_replicas() if not r.is_active and
            r.state.value == "retired"
        )
        migrations = (
            float(np.mean([c.stats.migrations for c in self.benign]))
            if self.benign
            else 0.0
        )
        latencies = [
            c.stats.mean_latency for c in self.benign
            if c.stats.requests_ok > 0
        ]
        # Quarantine census: where do persistent bots sit right now, and
        # how many benign clients share a replica with at least one bot?
        bot_replicas: set[str] = set()
        for bot in self.bots:
            if bot.replica_endpoint is not None:
                bot_replicas.add(bot.replica_endpoint.address)
        colocated = sum(
            1 for c in self.benign
            if c.replica_endpoint is not None
            and c.replica_endpoint.address in bot_replicas
        )
        # System-wide top talkers: the per-replica space-saving
        # summaries merge shard-order-independently.
        active = ctx.active_replicas()
        if active:
            merged = SpaceSaving.merge_all(
                [r.traffic.hitter_summary(ctx.now) for r in active]
            )
            hitters = [h.to_list() for h in merged.top()]
        else:
            hitters = []
        return RunReport(
            duration=duration,
            shuffles=ctx.coordinator.shuffle_count,
            replicas_recycled=recycled,
            benign_success_overall=metrics.benign_success_ratio(),
            benign_success_last_quarter=metrics.success_ratio_between(
                ctx.now - duration / 4, ctx.now
            ),
            benign_mean_latency=(
                float(np.mean(latencies)) if latencies else 0.0
            ),
            benign_migrations=migrations,
            naive_waste_ratio=self.botnet.waste_ratio,
            quarantined_bots=len(self.bots),
            bots_colocated_benign=colocated,
            samples=list(metrics.samples),
            heavy_hitters=hitters,
            trust_tiers=(
                None if ctx.trust is None else ctx.trust.tier_counts()
            ),
        )
