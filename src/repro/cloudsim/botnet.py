"""The botnet: hit-list management and naive-bot flooding.

Naive bots "can only attack static IP addresses or DNS names on a hit-list
provided by persistent bots" (Section II-B).  We model the naive fleet as
an aggregate flood source of configurable total packet rate — individual
naive bots add nothing to fidelity since they never interact with the
defense beyond raw packets — while the hit-list itself is maintained
exactly as the paper describes: persistent bots reveal replica addresses,
the botmaster propagates them to the fleet after a coordination delay, and
floods aimed at retired (recycled) replicas are simply wasted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import CloudContext

__all__ = ["HitListEntry", "Botnet"]


@dataclass
class HitListEntry:
    """One address on the botnet's target list."""

    address: str
    revealed_at: float
    active_since: float  # when naive bots actually started flooding it


class Botnet:
    """Botmaster state: hit-list plus the aggregate naive flood loop.

    Args:
        ctx: shared simulation context.
        naive_pps: total flood capacity of the naive fleet in packets/s,
            split evenly over the current hit-list.
        propagation_delay: time between a persistent bot's reveal and the
            naive fleet re-targeting — the paper notes this re-coordination
            cost is non-trivial in practice and works in the defender's
            favor.
        flood_tick: granularity at which flood packets are injected.
    """

    def __init__(
        self,
        ctx: "CloudContext",
        naive_pps: float,
        propagation_delay: float = 2.0,
        flood_tick: float = 0.5,
        prune_delay: float = 10.0,
    ) -> None:
        self.ctx = ctx
        self.naive_pps = naive_pps
        self.propagation_delay = propagation_delay
        self.flood_tick = flood_tick
        self.prune_delay = prune_delay
        self._dead_since: dict[str, float] = {}
        self.hit_list: dict[str, HitListEntry] = {}
        self.packets_effective = 0.0
        self.packets_wasted = 0.0
        self.reveals = 0
        self._running = False

    # ------------------------------------------------------------------
    # hit-list
    # ------------------------------------------------------------------
    def reveal(self, address: str) -> None:
        """A persistent bot reports a replica location to the botmaster."""
        self.reveals += 1
        if address in self.hit_list:
            return
        entry = HitListEntry(
            address=address,
            revealed_at=self.ctx.now,
            active_since=self.ctx.now + self.propagation_delay,
        )
        self.hit_list[address] = entry
        self.ctx.trace("botnet_reveal", address=address)

    def forget(self, address: str) -> None:
        """Drop an address (botmaster-side pruning; optional behaviour)."""
        self.hit_list.pop(address, None)

    def targets(self) -> list[str]:
        """Addresses the naive fleet is currently flooding.

        Sorted by address so flood delivery (and the replica-load events
        it schedules) has a canonical order independent of reveal
        history.
        """
        return [
            entry.address
            for _, entry in sorted(self.hit_list.items())
            if entry.active_since <= self.ctx.now
        ]

    # ------------------------------------------------------------------
    # flooding
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic aggregate flood."""
        if self._running:
            return
        self._running = True
        self.ctx.sim.schedule(self.flood_tick, self._flood, label="flood")

    def stop(self) -> None:
        self._running = False

    def _flood(self) -> None:
        if not self._running:
            return
        targets = self.targets()
        if targets:
            per_target = self.naive_pps * self.flood_tick / len(targets)
            for address in targets:
                replica = self.ctx.replica_by_address(address)
                if replica is not None and replica.is_active:
                    # The naive fleet is modelled in aggregate; its
                    # collective label is what the replica's sketch
                    # attributes the flood mass to.
                    replica.receive_flood(per_target, source="naive-fleet")
                    self.packets_effective += per_target
                    self._dead_since.pop(address, None)
                else:
                    # The moving target moved: packets to recycled
                    # addresses are null-routed (pure attacker waste).
                    self.packets_wasted += per_target
                    self._dead_since.setdefault(address, self.ctx.now)
        self._prune()
        self.ctx.sim.schedule(self.flood_tick, self._flood, label="flood")

    def _prune(self) -> None:
        """Botmaster re-coordination: drop long-dead targets.

        The paper notes botnets "re-coordinate and re-focus their traffic"
        only after non-trivial effort and time; ``prune_delay`` is that
        cost.  Until it elapses, flood capacity keeps draining into
        null-routed addresses.
        """
        expired = [
            address
            for address, dead_at in sorted(self._dead_since.items())
            if self.ctx.now - dead_at >= self.prune_delay
        ]
        for address in expired:
            self.hit_list.pop(address, None)
            del self._dead_since[address]

    @property
    def waste_ratio(self) -> float:
        """Fraction of naive flood aimed at already-recycled replicas."""
        total = self.packets_effective + self.packets_wasted
        if total == 0:
            return 0.0
        return self.packets_wasted / total
