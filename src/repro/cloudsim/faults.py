"""Fault injection: unplanned replica failures and recovery.

DDoS is not the only thing that kills a replica — instances crash.  The
architecture handles this for free: the coordinator's sweep notices dead
replicas, removes them from the load balancers, and provisions
replacements; affected clients fall back to the DNS → load-balancer
re-entry path (the same one that catches stragglers who miss a shuffle
redirect).  :class:`ChaosMonkey` drives random crashes so tests and
benchmarks can verify the recovery path under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import CloudContext

__all__ = ["ChaosMonkey"]


@dataclass
class ChaosMonkey:
    """Randomly crashes active replicas.

    Args:
        ctx: simulation context.
        crash_rate: expected crashes per second across the fleet.
        tick: scheduling granularity.
    """

    ctx: "CloudContext"
    crash_rate: float = 0.05
    tick: float = 1.0
    crashes: int = field(default=0, init=False)
    _running: bool = field(default=False, init=False)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.ctx.sim.schedule(self.tick, self._maybe_crash, label="chaos")

    def stop(self) -> None:
        self._running = False

    def _maybe_crash(self) -> None:
        if not self._running:
            return
        count = int(self.ctx.rng.poisson(self.crash_rate * self.tick))
        active = self.ctx.active_replicas()
        for _ in range(min(count, len(active))):
            victim = active[int(self.ctx.rng.integers(len(active)))]
            if victim.is_active:
                self.crashes += 1
                self.ctx.trace(
                    "replica_crashed", address=victim.endpoint.address
                )
                self.ctx.fail_replica(victim)
        self.ctx.sim.schedule(self.tick, self._maybe_crash, label="chaos")
