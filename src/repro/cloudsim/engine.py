"""Discrete-event simulation core for the cloud architecture model.

A deliberately small, dependency-free DES kernel: events are ``(time,
sequence)``-ordered callbacks on a binary heap.  Everything in
:mod:`repro.cloudsim` — DNS lookups, load-balancer redirects, HTTP
requests, WebSocket pushes, replica boot-ups, bot floods — is scheduled
through one :class:`Simulator` instance, which makes causality trivially
auditable (tests assert the clock never runs backwards).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (negative delays, running twice, ...)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; the monotonically increasing sequence
    number makes simultaneous events FIFO and the heap ordering total.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap, inert)."""
        self.cancelled = True


class Simulator:
    """Event queue + clock.

    Usage::

        sim = Simulator()
        sim.schedule(0.5, lambda: print("hello"), label="greeting")
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for tests and reports)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still in the heap (including cancelled tombstones)."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        event = Event(
            time=self.now + delay,
            seq=next(self._seq),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        return self.schedule(time - self.now, action, label=label)

    def run_until(self, end_time: float, max_events: int | None = None) -> None:
        """Process events in order until the clock passes ``end_time``.

        Args:
            end_time: absolute simulation time to stop at; the clock is
                advanced to exactly ``end_time`` when the queue drains or
                the next event lies beyond it.
            max_events: optional hard cap, a guard against accidental
                event storms in tests.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            budget = max_events if max_events is not None else float("inf")
            while self._queue and self._events_processed < budget:
                event = self._queue[0]
                if event.time > end_time:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if event.time < self.now:
                    raise SimulationError(
                        f"time went backwards: {event.time} < {self.now}"
                    )
                self.now = event.time
                self._events_processed += 1
                event.action()
            if max_events is not None and self._events_processed >= budget:
                raise SimulationError(
                    f"exceeded max_events={max_events} "
                    f"(simulation runaway at t={self.now:.3f})"
                )
            self.now = max(self.now, end_time)
        finally:
            self._running = False

    def run(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        self.run_until(float("inf"), max_events=max_events)


def every(
    sim: Simulator,
    interval: float,
    action: Callable[[], None],
    label: str = "",
    jitter: Callable[[], float] | None = None,
) -> Callable[[], None]:
    """Schedule ``action`` periodically; returns a stop function.

    ``jitter`` (if given) returns an extra delay added to each interval —
    used to desynchronize client request loops.
    """
    stopped = False

    def tick() -> None:
        if stopped:
            return
        action()
        delay = interval + (jitter() if jitter is not None else 0.0)
        sim.schedule(max(1e-9, delay), tick, label=label)

    def stop() -> None:
        nonlocal stopped
        stopped = True

    sim.schedule(interval + (jitter() if jitter is not None else 0.0),
                 tick, label=label)
    return stop
