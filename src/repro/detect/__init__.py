"""repro.detect — sketch-based streaming detection.

Fixed-memory, O(1)-per-request primitives for the detection half of the
shuffling loop: a count-min sketch for per-client frequency, a
space-saving summary for top talkers, an epoch-rotated sliding window
combining both with saturation tallies, and a report type that exports
the result through the shared :mod:`repro.obs` event schema.

Layering: this package sits beside :mod:`repro.obs` near the bottom of
the import contract — stdlib + numpy + obs only — so both the live
service and the simulators consume the same detectors.
"""

from __future__ import annotations

from .heavyhitters import HeavyHitter, SpaceSaving
from .params import SketchParams
from .report import HeavyHitterReport
from .sketch import CountMinSketch, key_digest, key_digests
from .window import SketchWindow

__all__ = [
    "CountMinSketch",
    "HeavyHitter",
    "HeavyHitterReport",
    "SketchParams",
    "SketchWindow",
    "SpaceSaving",
    "key_digest",
    "key_digests",
]
