"""Sliding-window detection state as a ring of epoch sketches.

A true sliding window over a stream needs per-event timestamps — the
deque the exact :class:`repro.service.tokens.SaturationMonitor` keeps,
whose memory grows with request rate.  :class:`SketchWindow` trades a
little temporal resolution for fixed memory: the window is split into
``epochs`` equal cells, each holding one admitted/throttled tally, one
:class:`~repro.detect.sketch.CountMinSketch`, and one
:class:`~repro.detect.heavyhitters.SpaceSaving` summary.  Recording
touches only the live cell; queries aggregate the cells still inside
the window; rotation clears cells whose epoch has slid out.  Memory is
``epochs × (sketch + summary)`` bytes — constant in both request rate
and client count.

Clocks are explicit everywhere (``now`` arguments): the window works
identically on the service's monotonic clock and cloudsim's sim-time,
and the sim layers' wall-clock ban (reprolint P4) is satisfied by
construction.

Two ingestion shapes mirror the sketch's: scalar :meth:`record` for
request-at-a-time callers, and :meth:`record_batch` for the saturating
hot path — a numpy digest batch folded into the live cell's sketch in
one vectorized pass, with only CMS-flagged heavy *candidates* promoted
into the space-saving summary (the two-stage design that keeps the
batch path free of per-item Python work for the benign majority).
"""

from __future__ import annotations

import numpy as np

from .heavyhitters import HeavyHitter, SpaceSaving
from .params import SketchParams
from .sketch import CountMinSketch, key_digest

__all__ = ["SketchWindow"]


class _Cell:
    """One epoch's worth of detection state."""

    __slots__ = ("epoch", "total", "throttled", "sketch", "hitters")

    def __init__(self, params: SketchParams) -> None:
        self.epoch = -1  # epoch index currently stored; -1 = empty
        self.total = 0
        self.throttled = 0
        self.sketch = CountMinSketch(
            params.width, params.depth, seed=params.seed
        )
        self.hitters = SpaceSaving(params.top_k)

    def clear(self, epoch: int) -> None:
        self.epoch = epoch
        self.total = 0
        self.throttled = 0
        self.sketch.reset()
        self.hitters.reset()


class SketchWindow:
    """Fixed-memory sliding window of saturation + heavy-hitter state.

    Args:
        window: window length in seconds (same semantics as the exact
            monitor's ``window``).
        params: sketch sizing; all cells share ``params.seed`` so their
            sketches stay merge-compatible.
        epochs: ring cells; temporal resolution is ``window / epochs``
            (a query may include up to one extra epoch of history).
    """

    __slots__ = ("window", "params", "epochs", "_epoch_len", "_cells")

    def __init__(
        self,
        window: float,
        params: SketchParams | None = None,
        epochs: int = 4,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.window = window
        self.params = params if params is not None else SketchParams()
        self.epochs = epochs
        self._epoch_len = window / epochs
        self._cells = [_Cell(self.params) for _ in range(epochs)]

    # ------------------------------------------------------------------
    # rotation
    # ------------------------------------------------------------------
    def _live_cell(self, now: float) -> _Cell:
        """The cell for ``now``'s epoch, cleared if it held stale data."""
        epoch = int(now / self._epoch_len)
        cell = self._cells[epoch % self.epochs]
        if cell.epoch != epoch:
            cell.clear(epoch)
        return cell

    def _active_cells(self, now: float) -> list[_Cell]:
        """Cells whose epoch still overlaps ``[now - window, now]``."""
        epoch = int(now / self._epoch_len)
        oldest = epoch - self.epochs + 1
        return [
            cell
            for cell in self._cells
            if oldest <= cell.epoch <= epoch
        ]

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def record(
        self,
        now: float,
        admitted: bool,
        key: str | None = None,
        digest: int | None = None,
        count: int = 1,
    ) -> None:
        """Record one request outcome (and optionally its source key).

        Either ``key`` or a pre-computed ``digest`` may be given; with
        both, the digest is trusted (hot paths compute it once at
        admission).  With neither, only the saturation tallies move.
        """
        cell = self._live_cell(now)
        cell.total += count
        if not admitted:
            cell.throttled += count
        if key is None and digest is None:
            return
        if digest is None:
            assert key is not None
            digest = key_digest(key)
        cell.sketch.add_digest(digest, count)
        if key is not None:
            # Promote only when the sketch already ranks the key at
            # heavy-hitter mass — the summary then tracks talkers, not
            # the benign long tail.
            estimate = cell.sketch.estimate_digest(digest)
            threshold = cell.sketch.total / self.params.top_k
            if estimate >= threshold:
                cell.hitters.add(key, count)
            else:
                cell.hitters.total += count

    def record_batch(
        self,
        now: float,
        digests: np.ndarray,
        throttled: int = 0,
        keys: list[str] | None = None,
    ) -> None:
        """Fold a digest batch into the live cell in one pass.

        Args:
            now: batch timestamp (one epoch for the whole batch — the
                hot path drains queues far faster than epochs rotate).
            digests: uint64 key digests, one per request.
            throttled: how many of the batch were throttled.
            keys: optional key strings aligned with ``digests``; when
                given, CMS-flagged heavy candidates are promoted into
                the space-saving summary.
        """
        digests = np.ascontiguousarray(digests, dtype=np.uint64)
        n = int(digests.size)
        if n == 0:
            return
        cell = self._live_cell(now)
        cell.total += n
        cell.throttled += min(throttled, n)
        estimates = cell.sketch.add_batch(digests)
        if keys is None:
            cell.hitters.total += n
            return
        # Two-stage promotion: the vectorized comparison selects the
        # candidate indices, then candidates collapse to one summary
        # update per *distinct* heavy key — a flood of 4k packets from
        # one bot costs one add, not 4k.
        threshold = cell.sketch.total / self.params.top_k
        heavy = np.flatnonzero(
            estimates >= np.uint64(max(1, int(threshold)))
        )
        light = n - int(heavy.size)
        if light:
            cell.hitters.total += light
        if heavy.size:
            _, first, weights = np.unique(
                digests[heavy], return_index=True, return_counts=True
            )
            for j in range(first.size):
                cell.hitters.add(
                    keys[int(heavy[first[j]])], int(weights[j])
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def counts(self, now: float) -> tuple[int, int]:
        """``(total, throttled)`` over the live window."""
        total = 0
        throttled = 0
        for cell in self._active_cells(now):
            total += cell.total
            throttled += cell.throttled
        return total, throttled

    def throttle_ratio(self, now: float) -> float:
        total, throttled = self.counts(now)
        return throttled / total if total else 0.0

    def estimate(self, now: float, key: str | bytes) -> int:
        """Windowed frequency upper bound for ``key``."""
        digest = key_digest(key)
        return sum(
            cell.sketch.estimate_digest(digest)
            for cell in self._active_cells(now)
        )

    def hitter_summary(self, now: float) -> SpaceSaving:
        """The live window's merged space-saving summary.

        Useful to callers that merge further (e.g. a system-wide view
        across replicas) — merging summaries is order-independent.
        """
        cells = self._active_cells(now)
        if not cells:
            return SpaceSaving(self.params.top_k)
        return SpaceSaving.merge_all(
            [cell.hitters for cell in cells],
            capacity=self.params.top_k,
        )

    def heavy_hitters(self, now: float, n: int | None = None) -> list[HeavyHitter]:
        """Top talkers over the live window (shard-merged summaries)."""
        return self.hitter_summary(now).top(
            n if n is not None else self.params.top_k
        )

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def reset(self) -> None:
        for cell in self._cells:
            cell.epoch = -1
            cell.clear(-1)

    def state_bytes(self) -> int:
        """Current detector footprint: fixed sketch matrices + the
        bounded heavy-hitter tables."""
        return sum(
            cell.sketch.state_bytes() + cell.hitters.state_bytes()
            for cell in self._cells
        )
