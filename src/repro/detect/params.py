"""Sketch sizing: the (ε, δ) accuracy contract in one place.

Every sketch in :mod:`repro.detect` is sized from two numbers with
textbook meanings (Cormode & Muthukrishnan, the count-min paper):

- **ε** (``epsilon``) — the additive error budget as a fraction of the
  stream mass ``N``: a point query overestimates by at most ``ε·N`` …
- **δ** (``delta``) — … except with probability at most ``δ`` (per
  query, over the random choice of row hashes).

Those translate into a counter matrix of ``depth = ceil(ln 1/δ)`` rows
by ``width = ceil(e/ε)`` columns, so memory is ``O((1/ε)·ln(1/δ))`` —
*independent of the number of distinct clients*, which is the whole
point: a detector sized for 10³ clients is byte-for-byte the detector
for 10⁶.

:class:`SketchParams` is shared by the service's sketch-backed
saturation monitor, the cloudsim replicas' traffic accounting, and the
benchmark, so one tuple of tunables describes every deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SketchParams"]


@dataclass(frozen=True)
class SketchParams:
    """Accuracy/memory contract for one sketch deployment.

    Attributes:
        epsilon: additive-error budget as a fraction of stream mass
            (``estimate - true <= epsilon * N`` with prob. ``1 - delta``).
        delta: per-query failure probability of the ε bound.
        top_k: heavy-hitter summary capacity — every key whose true
            count exceeds ``N / top_k`` is guaranteed tracked.
        seed: deterministic row-hash seed (see
            :meth:`repro.detect.sketch.CountMinSketch` — results are
            identical across processes and ``PYTHONHASHSEED`` values).
    """

    epsilon: float = 0.02
    delta: float = 0.01
    top_k: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be within (0, 1)")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be within (0, 1)")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")

    @property
    def width(self) -> int:
        """Counter columns: ``ceil(e / epsilon)``."""
        return math.ceil(math.e / self.epsilon)

    @property
    def depth(self) -> int:
        """Hash rows: ``ceil(ln(1 / delta))``."""
        return max(1, math.ceil(math.log(1.0 / self.delta)))

    def state_bytes(self) -> int:
        """Fixed sketch memory (8-byte counters), for capacity planning."""
        return self.width * self.depth * 8
