"""Heavy-hitter reports: detection state as observable evidence.

The coordinator's confirmation sweep (and a human at `repro-obs
summarize`) needs a compact, serializable answer to "who is hammering
replica r right now?".  :class:`HeavyHitterReport` is that answer: one
replica's windowed saturation tallies plus its top talkers, convertible
to and from the shared :class:`repro.obs.Event` schema (kind
``heavy_hitters``) so reports travel the same audit trail as shuffles
and faults, and render in the existing tooling without :mod:`repro.obs`
ever importing this layer — the event payload is plain JSON-ready data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..obs import Event
from .heavyhitters import HeavyHitter

__all__ = ["HeavyHitterReport"]

#: Event kind under which reports travel the obs audit trail.
EVENT_KIND = "heavy_hitters"


@dataclass(frozen=True)
class HeavyHitterReport:
    """One replica's windowed detection summary.

    Attributes:
        replica_id: reporting replica (int in the simulators, the
            ``r-<n>`` string in the live service).
        time: report timestamp on the emitting layer's clock.
        window: window length (seconds) the tallies cover.
        total: requests observed in the window.
        throttled: requests throttled in the window.
        top: heaviest talkers, largest first.
        state_bytes: detector memory footprint when the report was cut.
    """

    replica_id: int | str
    time: float
    window: float
    total: int
    throttled: int
    top: tuple[HeavyHitter, ...] = field(default_factory=tuple)
    state_bytes: int = 0

    @property
    def throttle_ratio(self) -> float:
        return self.throttled / self.total if self.total else 0.0

    def suspects(self, min_share: float = 0.0) -> list[str]:
        """Keys of reported hitters holding at least ``min_share`` of
        the window's mass (guaranteed-count part only, so a suspect
        really did send that much)."""
        if not self.total:
            return []
        return [
            hitter.key
            for hitter in self.top
            if (hitter.count - hitter.error) / self.total >= min_share
        ]

    # ------------------------------------------------------------------
    # obs interchange
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (the obs event ``data``)."""
        return {
            "replica": self.replica_id,
            "window": self.window,
            "total": self.total,
            "throttled": self.throttled,
            "top": [hitter.to_list() for hitter in self.top],
            "state_bytes": self.state_bytes,
        }

    def to_event(self, source: str | None = None) -> Event:
        """As a shared-schema obs event (kind ``heavy_hitters``)."""
        return Event(
            time=self.time,
            kind=EVENT_KIND,
            data=self.to_dict(),
            source=source,
        )

    @classmethod
    def from_event(cls, event: Event) -> "HeavyHitterReport":
        """Inverse of :meth:`to_event` (raises on other kinds)."""
        if event.kind != EVENT_KIND:
            raise ValueError(
                f"expected a {EVENT_KIND!r} event, got {event.kind!r}"
            )
        data = event.data
        return cls(
            replica_id=data["replica"],
            time=event.time,
            window=float(data["window"]),
            total=int(data["total"]),
            throttled=int(data["throttled"]),
            top=tuple(
                HeavyHitter(
                    key=str(key), count=int(count), error=int(error)
                )
                for key, count, error in data.get("top", [])
            ),
            state_bytes=int(data.get("state_bytes", 0)),
        )
