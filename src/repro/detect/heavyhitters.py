"""Space-saving top-k: who is hammering, in O(k) memory.

Metwally-Agrawal-El Abbadi *space-saving*: keep at most ``capacity``
``(key, count, error)`` entries; a key not being tracked evicts the
current minimum and inherits its count as both floor and error bound.
Guarantees the tests pin:

- **recall** — every key whose true count exceeds ``total/capacity`` is
  in the summary (it cannot have been evicted by a smaller stream);
- **one-sided counts** — ``count >= true``, and ``count - error <=
  true``: the bracket each reported hitter carries;
- **determinism** — evictions break count ties on the key itself, and
  iteration never touches a hash-ordered container, so summaries are
  identical across processes and ``PYTHONHASHSEED`` values;
- **shard merging** — :meth:`merge_all` sums per-key counts and error
  floors across shards and re-trims; summation is commutative, so the
  merged summary is independent of shard order (the property sharded
  coordinators need).

The scalar :meth:`add` costs ``O(1)`` on a tracked key and ``O(k)`` on
an eviction — with the small ``k`` of a top-talker table this is the
per-request cost the replicas pay.  The saturating batch path does not
pay it per item: the sketch window feeds the summary only with keys the
count-min sketch already flags heavy (the classic sketch + summary
two-stage heavy-hitter design).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HeavyHitter", "SpaceSaving"]


@dataclass(frozen=True)
class HeavyHitter:
    """One reported top-talker.

    Attributes:
        key: the client/flow identifier.
        count: estimated occurrence count (``>= true``).
        error: overestimate bound: ``count - error <= true <= count``.
    """

    key: str
    count: int
    error: int

    def to_list(self) -> list[object]:
        """JSON-ready ``[key, count, error]`` row."""
        return [self.key, self.count, self.error]


class SpaceSaving:
    """Bounded top-talker summary over a key stream.

    Args:
        capacity: maximum tracked keys ``k``; any key with true count
            above ``total/k`` is guaranteed present.
    """

    __slots__ = ("capacity", "total", "_counts", "_errors")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.total = 0
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add(self, key: str, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key``."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self.total += count
        counts = self._counts
        if key in counts:
            counts[key] += count
            return
        if len(counts) < self.capacity:
            counts[key] = count
            self._errors[key] = 0
            return
        # Evict the minimum; ties break on the key so the summary never
        # depends on dict iteration history or hash seed.
        victim = min(counts, key=lambda k: (counts[k], k))
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[key] = floor + count
        self._errors[key] = floor

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def estimate(self, key: str) -> int:
        """Count upper bound for a tracked key (0 when untracked)."""
        return self._counts.get(key, 0)

    def top(self, n: int | None = None) -> list[HeavyHitter]:
        """The heaviest keys, largest first (count ties on key)."""
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        if n is not None:
            ranked = ranked[:n]
        return [
            HeavyHitter(key=key, count=count, error=self._errors[key])
            for key, count in ranked
        ]

    def guaranteed_threshold(self) -> float:
        """True count above which presence is guaranteed: ``total/k``."""
        return self.total / self.capacity

    # ------------------------------------------------------------------
    # merge / state
    # ------------------------------------------------------------------
    @classmethod
    def merge_all(
        cls,
        summaries: list["SpaceSaving"],
        capacity: int | None = None,
    ) -> "SpaceSaving":
        """Combine shard summaries into one (shard-order independent).

        Per-key counts and error floors are summed across shards — a key
        absent from a shard contributes that shard's worst-case floor of
        0, keeping counts one-sided — then the union is re-trimmed to
        ``capacity`` keeping the largest (count, key) entries.  Sums are
        commutative and the trim is a deterministic sort, so any
        permutation of ``summaries`` produces identical state.
        """
        if not summaries:
            raise ValueError("merge_all needs at least one summary")
        if capacity is None:
            capacity = max(s.capacity for s in summaries)
        merged_counts: dict[str, int] = {}
        merged_errors: dict[str, int] = {}
        for summary in summaries:
            for key, count in summary._counts.items():
                merged_counts[key] = merged_counts.get(key, 0) + count
                merged_errors[key] = (
                    merged_errors.get(key, 0) + summary._errors[key]
                )
        result = cls(capacity)
        result.total = sum(s.total for s in summaries)
        kept = sorted(
            merged_counts.items(), key=lambda item: (-item[1], item[0])
        )[:capacity]
        for key, count in kept:
            result._counts[key] = count
            result._errors[key] = merged_errors[key]
        return result

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Two-shard convenience form of :meth:`merge_all`."""
        return SpaceSaving.merge_all([self, other])

    def reset(self) -> None:
        self.total = 0
        self._counts.clear()
        self._errors.clear()

    def state_bytes(self) -> int:
        """Rough summary footprint: capacity entries of key + 2 ints."""
        key_bytes = sum(len(k) for k in self._counts)
        return key_bytes + 16 * len(self._counts)

    def to_bytes(self) -> bytes:
        """Canonical serialization (sorted rows) for byte-identity
        determinism tests."""
        rows = ";".join(
            f"{key}={count}~{self._errors[key]}"
            for key, count in sorted(self._counts.items())
        )
        return f"ss:{self.capacity}:{self.total}:{rows}".encode("utf-8")
