"""Count-min sketch with conservative update (streaming frequency).

The frequency oracle behind the fixed-memory detection path: a
``depth × width`` matrix of counters where every key is folded into one
counter per row by a pairwise-independent hash, queried as the minimum
over its row counters.  Properties the tests pin:

- **one-sided error** — ``estimate(k) >= true count of k`` always (every
  row counter dominates the key's true count; conservative update
  preserves the invariant);
- **bounded overestimate** — ``estimate(k) - true <= ε·N`` except with
  probability ``δ``, where ``N`` is the stream mass (``total``);
- **mergeability** — element-wise counter sums combine shard sketches,
  and integer addition is commutative, so the merged bytes are
  identical regardless of merge order;
- **determinism** — row hashes are multiply-shift mixes whose
  coefficients come from a :class:`numpy.random.SeedSequence`, and keys
  are digested with ``blake2b``; nothing consults Python's randomized
  ``hash()``, so sketch contents are byte-identical across processes
  and ``PYTHONHASHSEED`` values.

Ingestion has two shapes sharing one counter matrix: the scalar
:meth:`~CountMinSketch.add` for request-at-a-time callers (the live
service, the DES), and the vectorized :meth:`~CountMinSketch.add_batch`
for the saturating hot path, where a numpy batch of pre-computed key
digests is folded in one ``np.maximum.at`` pass — the difference the
detection benchmark measures.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

__all__ = ["CountMinSketch", "key_digest", "key_digests"]

#: wrap-around mask: all hashing is arithmetic mod 2**64 so the scalar
#: (python int) and batch (numpy uint64) paths index identically.
_MASK64 = 0xFFFFFFFFFFFFFFFF


def key_digest(key: str | bytes) -> int:
    """Stable 64-bit digest of a key (``PYTHONHASHSEED``-independent).

    Computed once per client at admission time in the hot-path design:
    the per-request cost is then pure arithmetic on the digest.
    """
    if isinstance(key, str):
        key = key.encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(key, digest_size=8).digest(), "little"
    )


def key_digests(keys: list[str] | tuple[str, ...]) -> np.ndarray:
    """Vectorize :func:`key_digest` over a key list (uint64 array)."""
    return np.array([key_digest(key) for key in keys], dtype=np.uint64)


class CountMinSketch:
    """Fixed-memory frequency sketch over a key stream.

    Args:
        width: counters per row (``ceil(e/ε)`` for error budget ε).
        depth: hash rows (``ceil(ln 1/δ)`` for failure probability δ).
        seed: row-hash seed; two sketches merge only when their
            ``(width, depth, seed)`` match.
        conservative: update only as far as the current estimate
            requires (Estan-Varghese conservative update) — never
            overestimates more than the plain sketch, often much less.
    """

    __slots__ = ("width", "depth", "seed", "conservative", "counts",
                 "total", "_a", "_b")

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int = 0,
        conservative: bool = True,
    ) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.conservative = conservative
        self.counts = np.zeros((depth, width), dtype=np.uint64)
        self.total = 0
        # Deterministic row-hash coefficients: SeedSequence spreads the
        # user seed into well-mixed 64-bit words regardless of its
        # entropy, so seed=0 and seed=1 give unrelated hash families.
        state = np.random.SeedSequence(seed).generate_state(
            2 * depth, dtype=np.uint64
        )
        self._a = state[:depth] | np.uint64(1)  # odd multipliers
        self._b = state[depth:]

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def _indices(self, digest: int) -> list[int]:
        """Row-wise counter index of one key digest (scalar path).

        Multiply-shift: the *high* 32 bits of ``a*x + b`` feed the
        modulo.  Reducing the product directly would keep only its low
        bits, and odd multipliers preserve low-bit congruences — two
        digests equal mod ``width`` would then collide in every row at
        once, destroying the rows' independence.
        """
        return [
            (((int(a) * digest + int(b)) & _MASK64) >> 32) % self.width
            for a, b in zip(self._a, self._b)
        ]

    def _index_matrix(self, digests: np.ndarray) -> np.ndarray:
        """``(depth, n)`` counter indices for a digest batch.

        uint64 arithmetic wraps mod 2**64 in numpy, matching the masked
        python-int arithmetic of the scalar path exactly.
        """
        mixed = self._a[:, None] * digests[None, :] + self._b[:, None]
        return (mixed >> np.uint64(32)) % np.uint64(self.width)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add(self, key: str | bytes, count: int = 1) -> int:
        """Fold one occurrence batch of ``key`` in; returns the new
        estimate for ``key``."""
        return self.add_digest(key_digest(key), count)

    def add_digest(self, digest: int, count: int = 1) -> int:
        """Scalar update by pre-computed digest (hot-path form)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        rows = range(self.depth)
        idx = self._indices(digest)
        self.total += count
        if self.conservative:
            estimate = min(int(self.counts[i, idx[i]]) for i in rows)
            target = np.uint64(estimate + count)
            for i in rows:
                if self.counts[i, idx[i]] < target:
                    self.counts[i, idx[i]] = target
            return int(target)
        for i in rows:
            self.counts[i, idx[i]] += np.uint64(count)
        return min(int(self.counts[i, idx[i]]) for i in rows)

    def add_batch(
        self, digests: np.ndarray, counts: np.ndarray | None = None
    ) -> np.ndarray:
        """Vectorized update; returns per-item post-update estimates.

        Args:
            digests: uint64 key digests, one per stream item (duplicates
                fine — they are aggregated before the counter update).
            counts: optional per-item weights (default: 1 each).

        Duplicate digests are combined first (``np.unique``), then every
        unique key receives one simultaneous conservative update:
        each of its row counters is raised to at least
        ``estimate_before + count``.  Colliding keys raise a shared
        counter to the larger of their targets — still an upper bound
        for each, so the one-sided guarantee survives batching, and
        ``np.maximum.at`` makes the result independent of intra-batch
        order.
        """
        digests = np.ascontiguousarray(digests, dtype=np.uint64)
        if digests.size == 0:
            return np.zeros(0, dtype=np.uint64)
        unique, inverse = np.unique(digests, return_inverse=True)
        if counts is None:
            weights = np.bincount(
                inverse, minlength=unique.size
            ).astype(np.uint64)
        else:
            weights = np.bincount(
                inverse, weights=np.asarray(counts, dtype=np.float64),
                minlength=unique.size,
            ).astype(np.uint64)
        idx = self._index_matrix(unique)
        self.total += int(weights.sum())
        if self.conservative:
            gathered = np.take_along_axis(
                self.counts, idx, axis=1
            )  # (depth, n_unique)
            targets = gathered.min(axis=0) + weights
            for i in range(self.depth):
                np.maximum.at(self.counts[i], idx[i], targets)
        else:
            for i in range(self.depth):
                np.add.at(self.counts[i], idx[i], weights)
        gathered = np.take_along_axis(self.counts, idx, axis=1)
        return gathered.min(axis=0)[inverse]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def estimate(self, key: str | bytes) -> int:
        """Frequency upper bound for ``key`` (``>=`` its true count)."""
        return self.estimate_digest(key_digest(key))

    def estimate_digest(self, digest: int) -> int:
        idx = self._indices(digest)
        return min(
            int(self.counts[i, idx[i]]) for i in range(self.depth)
        )

    def estimate_batch(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized point queries (uint64 estimates)."""
        digests = np.ascontiguousarray(digests, dtype=np.uint64)
        if digests.size == 0:
            return np.zeros(0, dtype=np.uint64)
        idx = self._index_matrix(digests)
        return np.take_along_axis(self.counts, idx, axis=1).min(axis=0)

    def error_bound(self) -> int:
        """Additive error ceiling ``ε·N`` implied by width and mass."""
        return math.ceil(math.e / self.width * self.total)

    # ------------------------------------------------------------------
    # merge / state
    # ------------------------------------------------------------------
    def compatible(self, other: "CountMinSketch") -> bool:
        return (
            self.width == other.width
            and self.depth == other.depth
            and self.seed == other.seed
        )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """New sketch holding both streams (commutative, associative)."""
        if not self.compatible(other):
            raise ValueError(
                "cannot merge sketches with different (width, depth, "
                "seed)"
            )
        merged = CountMinSketch(
            self.width, self.depth, self.seed,
            conservative=self.conservative,
        )
        merged.counts = self.counts + other.counts
        merged.total = self.total + other.total
        return merged

    @classmethod
    def merge_all(
        cls, sketches: list["CountMinSketch"]
    ) -> "CountMinSketch":
        """Merge shard sketches; the result is order-independent."""
        if not sketches:
            raise ValueError("merge_all needs at least one sketch")
        first = sketches[0]
        merged = cls(
            first.width, first.depth, first.seed,
            conservative=first.conservative,
        )
        for sketch in sketches:
            if not first.compatible(sketch):
                raise ValueError(
                    "cannot merge sketches with different (width, "
                    "depth, seed)"
                )
            merged.counts += sketch.counts
            merged.total += sketch.total
        return merged

    def reset(self) -> None:
        self.counts.fill(0)
        self.total = 0

    def state_bytes(self) -> int:
        """Bytes of counter state (fixed for the sketch's lifetime)."""
        return int(
            self.counts.nbytes + self._a.nbytes + self._b.nbytes
        )

    def to_bytes(self) -> bytes:
        """Canonical serialization of the counter state (for the
        byte-identity determinism tests and cross-process diffing)."""
        header = (
            f"cms:{self.width}:{self.depth}:{self.seed}:"
            f"{int(self.conservative)}:{self.total}:"
        ).encode("ascii")
        return header + np.ascontiguousarray(self.counts).tobytes()
