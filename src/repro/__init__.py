"""repro — reproduction of *Catch Me if You Can: A Cloud-Enabled DDoS
Defense* (Jia, Wang, Fleck, Li, Stavrou, Powell — DSN 2014).

The library implements the paper's shuffling-based moving-target DDoS
defense end to end:

- ``repro.core`` — shuffle-plan optimization (optimal DP, greedy, even
  baseline), attack-scale MLE, and the multi-round shuffling control loop.
- ``repro.sim`` — Monte-Carlo evaluation harness for the paper's
  Section VI-A simulations (Poisson arrivals, repeated runs, confidence
  intervals).
- ``repro.cloudsim`` — a discrete-event simulation of the full Section III
  architecture: DNS, redirecting load balancers, whitelist-enforcing
  replica servers, the coordination server, benign clients, and naive /
  persistent / on-off bots — plus the EC2-prototype migration-latency model
  of Section VI-B.
- ``repro.analysis`` — closed-form results (Theorem 1) and paper reference
  series used for shape comparison.
- ``repro.service`` — the live online defense: asyncio TCP replica
  backends, the shuffling coordinator, and a load-generation harness
  running the control loop over real localhost sockets
  (``repro-serve scenario``).
- ``repro.obs`` — the unified observability layer: metrics, spans, and
  one event schema shared by every layer above (``repro-obs`` inspects
  the traces; see ``docs/observability.md``).
- ``repro.detect`` — sketch-based streaming detection: count-min and
  space-saving summaries behind fixed-memory saturation monitoring and
  per-replica heavy-hitter reports (see ``docs/detection.md``).
- ``repro.trust`` — adaptive per-client trust profiles, the graduated
  TRUSTED/WATCH/THROTTLED/DENIED admission ladder, a trust-weighted
  estimator prior, and pluggable persistent state backends
  (memory / sqlite / atomic JSON file; see ``docs/trust.md``).
- ``repro.experiments`` — one driver per paper table/figure
  (``python -m repro.experiments <fig3|fig4|...|fig12|headline>``).

Quickstart::

    from repro import PlanRequest, ShuffleEngine, plan

    shuffle = plan(PlanRequest(n_clients=1000, n_bots=100, n_replicas=50))
    print(shuffle.describe())

    engine = ShuffleEngine(n_replicas=1000, planner="greedy")
    state = engine.run(benign=50_000, bots=100_000, target_fraction=0.8)
    print(f"saved 80% of benign clients in {len(state.rounds)} shuffles")
"""

from __future__ import annotations

# Importing the runtime registers the sim-layer execution backends
# (repro.sim.backend), giving sweep()/run_campaign_batch() their
# workers=/cache_dir= paths.  This is the one place the package wires
# the runtime layer onto sim — sim itself never imports runtime.
from . import detect, obs, runtime, trust
from .core import (
    BotEstimate,
    EstimateRequest,
    PLANNERS,
    PlanError,
    PlanRequest,
    RoundResult,
    ShuffleEngine,
    ShufflePlan,
    ShuffleState,
    dp_fast_plan,
    dp_fast_value,
    dp_plan,
    dp_value,
    estimate_bots_mle,
    estimate_bots_moment,
    even_plan,
    expected_saved,
    greedy_plan,
    shuffle_trajectory,
    single_replica_optimum,
    survival_probability,
)
from .core.api import estimate, plan

__version__ = "1.0.0"

__all__ = [
    "BotEstimate",
    "EstimateRequest",
    "PLANNERS",
    "PlanError",
    "PlanRequest",
    "RoundResult",
    "ShuffleEngine",
    "ShufflePlan",
    "ShuffleState",
    "__version__",
    "detect",
    "dp_fast_plan",
    "dp_fast_value",
    "dp_plan",
    "dp_value",
    "estimate",
    "estimate_bots_mle",
    "estimate_bots_moment",
    "even_plan",
    "expected_saved",
    "greedy_plan",
    "obs",
    "plan",
    "runtime",
    "shuffle_trajectory",
    "single_replica_optimum",
    "survival_probability",
    "trust",
]
