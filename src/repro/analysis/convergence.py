"""Mean-field prediction of the multi-round shuffling dynamics.

Simulating Figures 8-10 takes seconds; answering "how many shuffles will
mitigation take?" at planning time should take microseconds.  The
multi-round process has a natural deterministic approximation: each
round's *expected* benign saving is exactly Equation 1 evaluated on the
round's plan, so iterating

    B_{t+1} = B_t − E[S](plan(B_t + M, M, P))

tracks the mean trajectory of the stochastic process (the error is the
Jensen gap from evaluating the plan at the mean population instead of
averaging over populations — small, because E[S] is nearly linear in the
benign count over a round's range).

This yields closed-loop predictions for the paper's headline quantities
and an analytic explanation of Figure 10's diminishing returns: as B_t
falls with M fixed, the bot *fraction* of the active pool rises, every
group's survival probability falls, and the per-round yield decays.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.greedy import greedy_sizes
from ..core.objective import expected_saved_sizes

__all__ = ["TrajectoryPoint", "predict_trajectory", "predict_shuffles"]


@dataclass(frozen=True)
class TrajectoryPoint:
    """State of the mean-field recursion after one round."""

    round_index: int
    benign_active: float
    saved_cumulative: float
    saved_this_round: float

    @property
    def saved_fraction(self) -> float:
        total = self.benign_active + self.saved_cumulative
        if total == 0:
            return 1.0
        return self.saved_cumulative / total


def predict_trajectory(
    benign: int,
    bots: int,
    n_replicas: int,
    target_fraction: float = 0.8,
    max_rounds: int = 10_000,
) -> list[TrajectoryPoint]:
    """Iterate the mean-field recursion until the saving target.

    Uses the greedy planner (the runtime algorithm) with the true bot
    count, i.e. it predicts the *oracle* simulation — which is also what
    the paper's Section VI-A simulations measure.
    """
    if not 0 <= target_fraction <= 1:
        raise ValueError("target_fraction must be within [0, 1]")
    points: list[TrajectoryPoint] = []
    benign_active = float(benign)
    saved = 0.0
    threshold = target_fraction * benign
    for round_index in range(max_rounds):
        if saved >= threshold:
            break
        n_clients = int(round(benign_active)) + bots
        if n_clients <= 0 or benign_active < 0.5:
            break
        sizes = greedy_sizes(n_clients, min(bots, n_clients), n_replicas)
        expected = expected_saved_sizes(
            sizes, n_clients, min(bots, n_clients)
        )
        # E[S] counts expected *clients* on clean replicas; those are all
        # benign, but the plan was built for the rounded population —
        # rescale to the fractional benign count tracked here.
        scale = benign_active / max(1e-9, n_clients - bots)
        saved_this_round = expected * min(1.0, scale)
        if saved_this_round <= 1e-9:
            break  # saturated: no progress is possible at this P
        benign_active -= saved_this_round
        saved += saved_this_round
        points.append(
            TrajectoryPoint(
                round_index=round_index,
                benign_active=benign_active,
                saved_cumulative=saved,
                saved_this_round=saved_this_round,
            )
        )
    return points


def predict_shuffles(
    benign: int,
    bots: int,
    n_replicas: int,
    target_fraction: float = 0.8,
) -> int | None:
    """Predicted shuffles to reach the target, or ``None`` if unreachable
    (Theorem 1 saturation at this replica count)."""
    points = predict_trajectory(
        benign, bots, n_replicas, target_fraction
    )
    if not points:
        return None
    threshold = target_fraction * benign
    if points[-1].saved_cumulative < threshold:
        return None
    return points[-1].round_index + 1
