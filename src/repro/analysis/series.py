"""Digitized reference points from the paper's figures + shape comparison.

The paper publishes curves, not tables; the values below are read off the
figures to the precision the plots allow (±5-10%).  They exist so that
benchmarks and EXPERIMENTS.md can compare *shapes* — orderings, growth
factors, crossovers — rather than eyeballing.  Where a figure's exact
values are unreadable, only the qualitative anchors the text states are
included.

Use :func:`shape_correlation` (Spearman rank correlation) to check that a
measured series rises and falls where the paper's does, and
:func:`growth_factor` for end-to-end ratios.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "PAPER_FIG3_SAVED_FRACTION",
    "PAPER_FIG8_SHUFFLES",
    "PAPER_FIG9_SHUFFLES",
    "PAPER_FIG12_TOTAL_SECONDS",
    "PAPER_HEADLINE_SHUFFLES",
    "shape_correlation",
    "growth_factor",
]

# Figure 3 (also the closed form — these are exact, computed from
# Equation 1, since the optimal curves are analytic): fraction of benign
# clients saved in one shuffle at N=1000, keyed by (P, M).
PAPER_FIG3_SAVED_FRACTION: Mapping[tuple[int, int], float] = {
    (50, 50): 0.374, (50, 100): 0.189, (50, 200): 0.100,
    (50, 300): 0.072, (50, 400): 0.059, (50, 500): 0.049,
    (100, 50): 0.629, (100, 100): 0.385, (100, 200): 0.202,
    (100, 300): 0.145, (100, 400): 0.119, (100, 500): 0.099,
    (150, 50): 0.746, (150, 100): 0.548, (150, 200): 0.305,
    (150, 300): 0.219, (150, 400): 0.179, (150, 500): 0.149,
    (200, 50): 0.814, (200, 100): 0.655, (200, 200): 0.409,
    (200, 300): 0.292, (200, 400): 0.239, (200, 500): 0.199,
}

# Figure 8, read off the plot: shuffles to reach the saving target with
# P = 1000, keyed by (benign, target, bots).  The paper's axis tops out
# around 150; the 50K/95% curve ends near it.
PAPER_FIG8_SHUFFLES: Mapping[tuple[int, float, int], float] = {
    (10_000, 0.80, 10_000): 20.0,
    (10_000, 0.80, 100_000): 40.0,
    (10_000, 0.95, 10_000): 30.0,
    (10_000, 0.95, 100_000): 75.0,
    (50_000, 0.80, 10_000): 30.0,
    (50_000, 0.80, 100_000): 60.0,
    (50_000, 0.95, 10_000): 55.0,
    (50_000, 0.95, 100_000): 145.0,
}

# Figure 9, read off the plot: shuffles vs shuffling replicas with 10^5
# bots, keyed by (benign, target, replicas).
PAPER_FIG9_SHUFFLES: Mapping[tuple[int, float, int], float] = {
    (10_000, 0.80, 900): 40.0,
    (10_000, 0.80, 2000): 10.0,
    (10_000, 0.95, 900): 75.0,
    (10_000, 0.95, 2000): 25.0,
    (50_000, 0.80, 900): 70.0,
    (50_000, 0.80, 2000): 20.0,
    (50_000, 0.95, 900): 150.0,
    (50_000, 0.95, 2000): 45.0,
}

# Figure 12, read off the plot: time for all clients to migrate (upper
# curve), keyed by client count.  Paper text: < 5 s at 60 clients.
PAPER_FIG12_TOTAL_SECONDS: Mapping[int, float] = {
    10: 1.5, 20: 2.2, 30: 2.8, 40: 3.4, 50: 4.2, 60: 4.8,
}

PAPER_HEADLINE_SHUFFLES = 60.0


def shape_correlation(
    paper: Sequence[float], measured: Sequence[float]
) -> float:
    """Spearman rank correlation between paper and measured series.

    1.0 means the measured series rises and falls exactly where the
    paper's does — the reproduction criterion for curve shapes.  Requires
    at least three points; constant series are rejected (no rank order to
    compare).
    """
    if len(paper) != len(measured):
        raise ValueError(
            f"series lengths differ: {len(paper)} vs {len(measured)}"
        )
    if len(paper) < 3:
        raise ValueError("need at least 3 points for a shape comparison")
    if len(set(paper)) == 1 or len(set(measured)) == 1:
        raise ValueError("constant series have no shape to compare")
    rho, _ = scipy_stats.spearmanr(np.asarray(paper), np.asarray(measured))
    return float(rho)


def growth_factor(series: Sequence[float]) -> float:
    """End-to-end ratio of a series (last / first).

    The quantity behind claims like "a ten-fold increase in bots results
    in less than a three-fold increase in shuffles".
    """
    if len(series) < 2:
        raise ValueError("need at least 2 points for a growth factor")
    if series[0] == 0:
        raise ValueError("first element is zero; growth factor undefined")
    return series[-1] / series[0]
