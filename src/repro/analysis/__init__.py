"""Analytical results and paper reference data.

- :mod:`~repro.analysis.theory` — Theorem 1 and closed-form expectations.
- :mod:`~repro.analysis.series` — digitized qualitative reference points
  from the paper's figures, used by benchmarks to compare shapes.
- :mod:`~repro.analysis.cost` — cloud-resource cost model (the paper's
  stated future work) comparing shuffling against pure expansion.
"""

from __future__ import annotations

from .convergence import (
    TrajectoryPoint,
    predict_shuffles,
    predict_trajectory,
)
from .cost import (
    CostModel,
    DefenseCost,
    compare_costs,
    expansion_cost,
    shuffling_cost,
)
from .series import (
    PAPER_FIG3_SAVED_FRACTION,
    PAPER_FIG8_SHUFFLES,
    PAPER_FIG9_SHUFFLES,
    PAPER_FIG12_TOTAL_SECONDS,
    PAPER_HEADLINE_SHUFFLES,
    growth_factor,
    shape_correlation,
)
from .theory import (
    all_attacked_with_high_probability,
    expected_saved_fraction_even,
    expected_unattacked_replicas,
    max_estimable_bots,
    min_replicas_for_bots,
)

__all__ = [
    "CostModel",
    "DefenseCost",
    "PAPER_FIG12_TOTAL_SECONDS",
    "PAPER_FIG3_SAVED_FRACTION",
    "PAPER_FIG8_SHUFFLES",
    "PAPER_FIG9_SHUFFLES",
    "PAPER_HEADLINE_SHUFFLES",
    "TrajectoryPoint",
    "all_attacked_with_high_probability",
    "compare_costs",
    "expansion_cost",
    "expected_saved_fraction_even",
    "expected_unattacked_replicas",
    "growth_factor",
    "max_estimable_bots",
    "min_replicas_for_bots",
    "predict_shuffles",
    "predict_trajectory",
    "shape_correlation",
    "shuffling_cost",
]
