"""Cloud-resource cost model for the defense (the paper's stated future
work: "a quantitative study on the cost of the shuffling-based moving
target defense").

Two cost drivers matter in any IaaS deployment:

- **instance-hours** — how many replica servers run concurrently, for how
  long; and
- **instance launches** — how many fresh instances are booted (each boot
  costs control-plane churn and, on most providers, a minimum billing
  quantum).

The shuffling defense keeps a constant pool of ``P`` shuffling replicas
(plus the replicas being replaced, so ~2P at the peak of a shuffle) for
the few minutes mitigation takes, then scales back to the regular
footprint.  Pure expansion (:mod:`repro.core.expansion`) must keep its
entire diluted fleet up for the whole attack, because it never isolates
the bots.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expansion import ExpansionPlan

__all__ = ["CostModel", "DefenseCost", "shuffling_cost", "expansion_cost",
           "compare_costs"]


@dataclass(frozen=True)
class CostModel:
    """Pricing assumptions (defaults are EC2-small-era magnitudes;
    conclusions are ratios and insensitive to the absolute prices).

    Attributes:
        instance_hour: price of one replica instance-hour.
        launch: fixed cost per instance boot (billing quantum +
            control-plane overhead).
        shuffle_duration: wall-clock seconds one shuffle occupies
            (replica boot + migration; Figure 12 puts migration itself at
            a few seconds).
    """

    instance_hour: float = 0.05
    launch: float = 0.005
    shuffle_duration: float = 30.0


@dataclass(frozen=True)
class DefenseCost:
    """Resource footprint of one defensive response."""

    strategy: str
    peak_instances: int
    instance_hours: float
    launches: int
    dollars: float

    def describe(self) -> str:
        return (
            f"{self.strategy}: peak {self.peak_instances:,} instances, "
            f"{self.instance_hours:,.1f} instance-hours, "
            f"{self.launches:,} launches, ${self.dollars:,.2f}"
        )


def shuffling_cost(
    n_replicas: int,
    n_shuffles: int,
    model: CostModel | None = None,
    steady_replicas: int = 0,
) -> DefenseCost:
    """Cost of mitigating via shuffling.

    ``n_replicas`` shuffling replicas stay up for the whole mitigation;
    each shuffle additionally boots a replacement set (the attacked
    replicas are recycled after migration, so the peak concurrency is
    about twice the pool).
    """
    model = model or CostModel()
    mitigation_hours = n_shuffles * model.shuffle_duration / 3600.0
    # Pool + in-flight replacements at peak.
    peak = 2 * n_replicas + steady_replicas
    instance_hours = peak * mitigation_hours
    launches = n_replicas * (n_shuffles + 1)
    dollars = (
        instance_hours * model.instance_hour + launches * model.launch
    )
    return DefenseCost(
        strategy="shuffling",
        peak_instances=peak,
        instance_hours=instance_hours,
        launches=launches,
        dollars=dollars,
    )


def expansion_cost(
    plan: ExpansionPlan,
    attack_duration_hours: float,
    model: CostModel | None = None,
) -> DefenseCost:
    """Cost of mitigating via pure server expansion.

    The diluted fleet must stay up as long as the attack does — expansion
    never removes the bots, so scaling back down re-concentrates them.
    """
    model = model or CostModel()
    instance_hours = plan.replicas_needed * attack_duration_hours
    dollars = (
        instance_hours * model.instance_hour
        + plan.replicas_needed * model.launch
    )
    return DefenseCost(
        strategy="expansion",
        peak_instances=plan.replicas_needed,
        instance_hours=instance_hours,
        launches=plan.replicas_needed,
        dollars=dollars,
    )


def compare_costs(
    benign: int,
    bots: int,
    target_fraction: float,
    shuffles_needed: float,
    n_replicas: int,
    attack_duration_hours: float = 6.0,
    model: CostModel | None = None,
) -> tuple[DefenseCost, DefenseCost]:
    """Shuffling vs expansion for the same protection target.

    Returns ``(shuffling, expansion)`` cost records; the paper's claim is
    that the first is far cheaper (intro: "fewer resources than attack
    dilution strategies using pure server expansion").
    """
    expansion_plan = ExpansionPlan.solve(
        benign + bots, bots, target_fraction
    )
    shuffling = shuffling_cost(
        n_replicas, round(shuffles_needed), model=model
    )
    expansion = expansion_cost(
        expansion_plan, attack_duration_hours, model=model
    )
    return shuffling, expansion
