"""Closed-form results from the paper (Theorem 1 and related quantities).

Section V models bot placement as throwing ``M`` persistent bots uniformly
into ``P`` shuffling replicas.  Theorem 1: if ``M > log_{1−1/P}(1/P)``,
then with high probability **every** replica is attacked (the expected
number of bot-free replicas, ``E[X_free] = P (1 − 1/P)^M``, drops below 1)
and the MLE of ``M`` degenerates.  The defense must then grow ``P`` until
``M <= log_{1−1/P}(1/P)``.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_unattacked_replicas",
    "max_estimable_bots",
    "all_attacked_with_high_probability",
    "min_replicas_for_bots",
    "expected_saved_fraction_even",
]


def expected_unattacked_replicas(n_replicas: int, n_bots: int) -> float:
    """``E[X_free] = P (1 − 1/P)^M`` under uniform bot placement."""
    if n_replicas < 1:
        raise ValueError(f"n_replicas={n_replicas} must be >= 1")
    if n_bots < 0:
        raise ValueError(f"n_bots={n_bots} must be >= 0")
    if n_replicas == 1:
        return 1.0 if n_bots == 0 else 0.0
    return n_replicas * (1.0 - 1.0 / n_replicas) ** n_bots


def max_estimable_bots(n_replicas: int) -> float:
    """Theorem 1 threshold ``log_{1−1/P}(1/P)``.

    For ``M`` above this value, all replicas are attacked with high
    probability and attack-scale estimation breaks down.
    """
    if n_replicas < 2:
        raise ValueError(
            f"n_replicas={n_replicas} must be >= 2 for the bound to exist"
        )
    return math.log(1.0 / n_replicas) / math.log1p(-1.0 / n_replicas)


def all_attacked_with_high_probability(n_replicas: int, n_bots: int) -> bool:
    """True when Theorem 1 predicts every shuffling replica is attacked."""
    return n_bots > max_estimable_bots(n_replicas)


def min_replicas_for_bots(n_bots: int, ceiling: int = 1 << 30) -> int:
    """Smallest ``P`` satisfying ``M <= log_{1−1/P}(1/P)``.

    This is the replica budget the coordination server must provision so
    that at least one replica stays bot-free in expectation and the MLE
    stays informative.  The threshold grows like ``P ln P``, so the search
    is a simple binary search.

    Example::

        >>> min_replicas_for_bots(100)
        30
    """
    if n_bots < 0:
        raise ValueError(f"n_bots={n_bots} must be >= 0")
    if n_bots <= 1:
        return 2
    lo, hi = 2, 2
    while max_estimable_bots(hi) < n_bots:
        hi *= 2
        if hi > ceiling:
            raise OverflowError(
                f"no replica count below {ceiling} can estimate {n_bots} bots"
            )
    lo = hi // 2
    while lo < hi:
        mid = (lo + hi) // 2
        if max_estimable_bots(mid) >= n_bots:
            hi = mid
        else:
            lo = mid + 1
    return hi


def expected_saved_fraction_even(
    n_clients: int, n_bots: int, n_replicas: int
) -> float:
    """Expected benign fraction saved in one even-split shuffle.

    Closed-form companion to Figure 4's naive baseline: with ``x = N/P``
    clients per replica, the expected saved count is
    ``P · x · C(N−x, M)/C(N, M)`` and the benign population is ``N − M``.
    Computed with the same log-space machinery as the planners.
    """
    from ..core.api import PlanRequest, plan as plan_shuffle

    if n_clients <= n_bots:
        return 0.0
    plan = plan_shuffle(
        PlanRequest(
            n_clients=n_clients,
            n_bots=n_bots,
            n_replicas=n_replicas,
            method="even",
        )
    )
    return plan.expected_saved / (n_clients - n_bots)
