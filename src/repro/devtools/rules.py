"""The built-in reprolint rule set (R1-R8).

Each rule enforces an invariant the paper's math or the project's
reproducibility contract depends on; the rationale strings below (and
``docs/static-analysis.md``) tie each one back to the relevant paper
section.  Rules are pure AST walks over the shared
:class:`~repro.devtools.context.FileContext` — no imports of the code
under analysis, so linting can never execute library side effects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import FileContext
from .registry import rule

Hits = Iterator[tuple[int, int, str]]

#: numpy.random attributes that are part of the seeded-Generator API and
#: therefore fine to reference; everything else on ``np.random`` is the
#: legacy global-state interface.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_NUMPY_ALIASES = frozenset({"np", "numpy"})

#: math-module callables banned from ``core/`` by R2: they materialise
#: full-width combinatorial integers that the log-space helpers in
#: ``repro.core.combinatorics`` exist to avoid.
_EXACT_COMBINATORICS = frozenset({"comb", "factorial", "perm"})

#: math-module functions whose result is float-typed — used by R3 to
#: recognise float expressions without whole-program type inference.
_MATH_FLOAT_FUNCS = frozenset(
    {
        "exp",
        "expm1",
        "exp2",
        "log",
        "log1p",
        "log2",
        "log10",
        "sqrt",
        "pow",
        "lgamma",
        "gamma",
        "erf",
        "erfc",
        "fabs",
        "fsum",
        "hypot",
        "fmod",
        "copysign",
        "ldexp",
        "nextafter",
    }
)

_FLOAT_CONSTANT_ATTRS = frozenset({"inf", "nan", "e", "pi", "tau", "euler_gamma"})

#: parameter names R7 rejects, mapped to the paper-vocabulary spelling
#: (Table I: N clients, M bots, P replicas).
_SYMBOL_ALIASES = {
    "num_clients": "n_clients",
    "nclients": "n_clients",
    "n_client": "n_clients",
    "client_count": "n_clients",
    "total_clients": "n_clients",
    "num_bots": "n_bots",
    "nbots": "n_bots",
    "n_bot": "n_bots",
    "bot_count": "n_bots",
    "num_attackers": "n_bots",
    "n_attackers": "n_bots",
    "num_replicas": "n_replicas",
    "nreplicas": "n_replicas",
    "n_replica": "n_replicas",
    "replica_count": "n_replicas",
    "num_servers": "n_replicas",
    "n_servers": "n_replicas",
    "server_count": "n_replicas",
}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@rule(
    "R1",
    "no-unseeded-rng",
    "Unseeded or global RNG state silently breaks the bit-for-bit "
    "reproducibility of Figures 3-12; every stochastic path must thread "
    "an explicitly seeded numpy.random.Generator.",
)
def check_no_unseeded_rng(ctx: FileContext) -> Hits:
    if ctx.is_test_file:
        # Test fixtures may build ad-hoc generators (conftest seeds them
        # anyway); the rule polices library code.
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "stdlib `random` has hidden global state; use a "
                        "seeded numpy.random.Generator instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield (
                    node.lineno,
                    node.col_offset,
                    "import from stdlib `random`; use a seeded "
                    "numpy.random.Generator instead",
                )
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NP_RANDOM_ALLOWED:
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"`numpy.random.{alias.name}` is the legacy "
                            "global-state API; use a seeded Generator",
                        )
        elif isinstance(node, ast.Call):
            target = _dotted(node.func)
            if target is None:
                continue
            parts = target.split(".")
            if (
                len(parts) == 3
                and parts[0] in _NUMPY_ALIASES
                and parts[1] == "random"
            ):
                attr = parts[2]
                if attr == "seed":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "np.random.seed() mutates hidden global state; "
                        "pass a seeded Generator instead",
                    )
                elif attr not in _NP_RANDOM_ALLOWED:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"legacy global sampler np.random.{attr}(); draw "
                        "from a seeded Generator instead",
                    )
            if parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield (
                    node.lineno,
                    node.col_offset,
                    "default_rng() without a seed is entropy-seeded and "
                    "unreproducible; pass an int seed, SeedSequence, or "
                    "parent Generator",
                )


@rule(
    "R2",
    "log-space-combinatorics",
    "Binomial coefficients overflow any float at paper scale (N up to "
    "150,000), so core/ must use the lgamma-based helpers in "
    "repro.core.combinatorics, never exact math.comb/factorial.",
)
def check_log_space_combinatorics(ctx: FileContext) -> Hits:
    if not ctx.in_package("core"):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module in {"math", "scipy.special"}:
                for alias in node.names:
                    if alias.name in _EXACT_COMBINATORICS:
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"import of exact `{node.module}.{alias.name}`"
                            " in core/; use the log-space helpers in "
                            "repro.core.combinatorics",
                        )
        elif isinstance(node, ast.Call):
            target = _dotted(node.func)
            if target is None:
                continue
            parts = target.split(".")
            if parts[-1] in _EXACT_COMBINATORICS and (
                parts[0] in {"math", "scipy", "special"} or len(parts) == 1
            ):
                # Bare-name calls (len == 1) only fire when the name was
                # imported from math/scipy.special — which R2 already
                # flags at the import — but flagging the call too makes
                # the report point at the actual overflow site.
                if len(parts) == 1 and not _imports_exact_comb(ctx):
                    continue
                yield (
                    node.lineno,
                    node.col_offset,
                    f"exact combinatorics call `{target}(...)` in core/; "
                    "C(N, M) overflows at paper scale — use "
                    "repro.core.combinatorics (log-space)",
                )


def _imports_exact_comb(ctx: FileContext) -> bool:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module in {
            "math",
            "scipy.special",
        }:
            if any(a.name in _EXACT_COMBINATORICS for a in node.names):
                return True
    return False


@rule(
    "R3",
    "no-float-equality",
    "Probabilities come out of exp/lgamma pipelines where == comparison "
    "is numerically meaningless; the only sound exact comparisons are "
    "the 0.0/1.0 sentinels produced by exp(-inf) and the m == 0 branch, "
    "and those must be marked `# exact-sentinel: <why>`.",
)
def check_no_float_equality(ctx: FileContext) -> Hits:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            floaty = next(
                (x for x in (left, right) if _is_float_expr(x)), None
            )
            if floaty is None:
                continue
            if _is_sentinel_literal(floaty) and ctx.suppressions.has_sentinel(
                floaty.lineno
            ):
                continue
            wording = (
                "float equality against sentinel "
                f"{ast.unparse(floaty)} needs an `# exact-sentinel: "
                "<why>` marker"
                if _is_sentinel_literal(floaty)
                else "==/!= on a float-typed expression; use math.isclose,"
                " an epsilon, or math.isinf/isnan"
            )
            yield floaty.lineno, floaty.col_offset, wording


def _is_float_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.Call):
        target = _dotted(node.func)
        if target == "float":
            return True
        if target is not None:
            parts = target.split(".")
            if (
                len(parts) == 2
                and parts[0] == "math"
                and parts[1] in _MATH_FLOAT_FUNCS
            ):
                return True
    if isinstance(node, ast.Attribute):
        target = _dotted(node)
        if target is not None:
            parts = target.split(".")
            return (
                len(parts) == 2
                and parts[0] in (_NUMPY_ALIASES | {"math"})
                and parts[1] in _FLOAT_CONSTANT_ATTRS
            )
    return False


def _is_sentinel_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value in (0.0, 1.0)
    )


@rule(
    "R4",
    "no-mutable-defaults",
    "A mutable default is shared across calls, so one simulation run can "
    "leak accumulated state into the next and break run-to-run "
    "determinism.",
)
def check_no_mutable_defaults(ctx: FileContext) -> Hits:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield (
                    default.lineno,
                    default.col_offset,
                    f"mutable default `{ast.unparse(default)}` in "
                    f"`{node.name}()`; default to None and create the "
                    "container inside the function",
                )


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = _dotted(node.func)
        return target in {
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "defaultdict",
            "collections.deque",
            "deque",
        }
    return False


@rule(
    "R5",
    "future-annotations",
    "`from __future__ import annotations` keeps annotations lazy (no "
    "import-time evaluation cost on hot paths) and lets every module use "
    "PEP 604/585 syntax uniformly on Python 3.10.",
)
def check_future_annotations(ctx: FileContext) -> Hits:
    if ctx.module_is_trivial:
        return
    for node in ctx.tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.module == "__future__"
            and any(alias.name == "annotations" for alias in node.names)
        ):
            return
    yield (
        1,
        0,
        "module is missing `from __future__ import annotations`",
    )


@rule(
    "R6",
    "core-api-annotations",
    "core/ is the algorithmic contract of the reproduction; full "
    "annotations on its public surface are what `mypy --strict` checks, "
    "so refactors cannot silently change argument meanings.",
)
def check_core_api_annotations(ctx: FileContext) -> Hits:
    if not ctx.in_package("core"):
        return
    for fn, is_method in _public_functions(ctx.tree):
        missing: list[str] = []
        args = list(fn.args.posonlyargs) + list(fn.args.args)
        if is_method and args:
            args = args[1:]  # self / cls
        args += list(fn.args.kwonlyargs)
        if fn.args.vararg is not None:
            args.append(fn.args.vararg)
        if fn.args.kwarg is not None:
            args.append(fn.args.kwarg)
        missing.extend(a.arg for a in args if a.annotation is None)
        if fn.returns is None:
            missing.append("return")
        if missing:
            yield (
                fn.lineno,
                fn.col_offset,
                f"public core function `{fn.name}` is missing type "
                f"annotations for: {', '.join(missing)}",
            )


def _public_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Public module-level functions and methods of public classes.

    Nested functions are implementation detail and skipped; methods are
    yielded with ``is_method=True`` so the receiver arg is exempt.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node, False
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and not item.name.startswith("_"):
                    is_static = any(
                        isinstance(d, ast.Name) and d.id == "staticmethod"
                        for d in item.decorator_list
                    )
                    yield item, not is_static


@rule(
    "R7",
    "paper-symbol-naming",
    "Public APIs keep the paper's Table I vocabulary (n_clients = N, "
    "n_bots = M, n_replicas = P) so call sites read against the math; "
    "synonyms drift and break keyword-argument compatibility.",
)
def check_paper_symbol_naming(ctx: FileContext) -> Hits:
    for fn, is_method in _public_functions(ctx.tree):
        args = (
            list(fn.args.posonlyargs)
            + list(fn.args.args)
            + list(fn.args.kwonlyargs)
        )
        if is_method and args:
            args = args[1:]
        for arg in args:
            canonical = _SYMBOL_ALIASES.get(arg.arg)
            if canonical is not None:
                yield (
                    arg.lineno,
                    arg.col_offset,
                    f"parameter `{arg.arg}` of public `{fn.name}` "
                    f"should use the paper symbol name `{canonical}`",
                )


@rule(
    "R8",
    "no-print-in-library",
    "Library layers report through return values and logging; print() "
    "in core/sim/cloudsim/analysis corrupts the CSV/JSON streams the "
    "experiment drivers own (experiments/ and devtools/ are the CLI "
    "surface and exempt, as are service/cli.py and obs/cli.py — the "
    "repro-serve and repro-obs entry points).",
)
def check_no_print_in_library(ctx: FileContext) -> Hits:
    if ctx.in_package("experiments") or ctx.in_package("devtools"):
        return
    if (
        ctx.in_package("service") or ctx.in_package("obs")
    ) and ctx.path.name == "cli.py":
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield (
                node.lineno,
                node.col_offset,
                "print() in library code; return the value or use logging",
            )
