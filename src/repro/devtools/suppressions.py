"""Suppression and sentinel comment parsing for reprolint.

Four comment forms are recognised (all parsed from real COMMENT tokens,
so occurrences inside string literals are ignored):

``# reprolint: disable=R3`` (or ``disable=R3,R5``)
    Suppresses the listed rules on the comment's own line.  When the
    comment is the only thing on its line, it suppresses the *next*
    line instead — useful when the 79-column budget leaves no room for
    a trailing comment.

``# reprolint: disable-file=R5``
    Suppresses the listed rules for the whole file.

``# exact-sentinel: <reason>``
    Marks a float equality against the exact ``0.0`` / ``1.0``
    sentinels as intentional; rule R3 accepts the comparison only when
    this marker (with a non-empty reason) is present.  See
    ``docs/static-analysis.md`` for when exact float equality is
    actually sound.

``# event-loop-safe: <reason>``
    Marks a call the async-blocking pass (P6) would flag as safe to run
    on the event loop, with the justification the reviewer needs (e.g.
    "closed-form estimator, sub-ms at live pool scale").  A non-empty
    reason is mandatory — the bare marker does not suppress.

``# domain: <log|linear> <reason>``
    Pins the numeric value-domain the numflow index infers for the
    statement on (or directly below) the comment's line.  The numeric
    passes (P11/P12) trust the annotation over inference — e.g. the
    ``return 0.0`` arm of ``log_binomial`` *is* a log-probability
    (``log 1 = 0``), which provenance alone cannot see.  A non-empty
    reason is mandatory — the bare marker does not pin anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)
_SENTINEL_RE = re.compile(r"#\s*exact-sentinel:\s*(?P<reason>\S.*)")
_LOOP_SAFE_RE = re.compile(r"#\s*event-loop-safe:\s*(?P<reason>\S.*)")
_DOMAIN_RE = re.compile(
    r"#\s*domain:\s*(?P<domain>log|linear)\b\s+(?P<reason>\S.*)"
)


@dataclass
class Suppressions:
    """Per-file suppression state, queried by rules via the context."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: lines whose suppression comment stands alone and therefore also
    #: covers the following line
    standalone: set[int] = field(default_factory=set)
    sentinel_lines: set[int] = field(default_factory=set)
    standalone_sentinels: set[int] = field(default_factory=set)
    loop_safe_lines: set[int] = field(default_factory=set)
    standalone_loop_safe: set[int] = field(default_factory=set)
    #: line -> pinned value domain ("log" / "linear"); reason mandatory
    domain_lines: dict[int, str] = field(default_factory=dict)
    standalone_domains: set[int] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_level:
            return True
        if rule_id in self.by_line.get(line, ()):
            return True
        prev = line - 1
        return prev in self.standalone and rule_id in self.by_line.get(
            prev, ()
        )

    def has_sentinel(self, line: int) -> bool:
        return (
            line in self.sentinel_lines
            or (line - 1) in self.standalone_sentinels
        )

    def has_loop_safe(self, line: int) -> bool:
        """True when an ``# event-loop-safe: <reason>`` marker covers
        ``line`` (same line, or standalone on the line above)."""
        return (
            line in self.loop_safe_lines
            or (line - 1) in self.standalone_loop_safe
        )

    def domain_at(self, line: int) -> str | None:
        """The pinned value domain covering ``line``, if any.

        A ``# domain: <log|linear> <reason>`` marker covers its own line
        and, when it stands alone, the line below it.
        """
        if line in self.domain_lines:
            return self.domain_lines[line]
        prev = line - 1
        if prev in self.standalone_domains:
            return self.domain_lines.get(prev)
        return None


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression/sentinel markers from ``source``.

    Tolerates files that fail to tokenize (the caller reports a parse
    error separately); in that case no suppressions apply.
    """
    sup = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return sup
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line_no = tok.start[0]
        text = tok.string
        standalone = tok.line[: tok.start[1]].strip() == ""
        match = _DISABLE_RE.search(text)
        if match is not None:
            rules = {r.strip() for r in match.group("rules").split(",")}
            if match.group("scope"):
                sup.file_level |= rules
            else:
                sup.by_line.setdefault(line_no, set()).update(rules)
                if standalone:
                    sup.standalone.add(line_no)
        sentinel = _SENTINEL_RE.search(text)
        if sentinel is not None:
            sup.sentinel_lines.add(line_no)
            if standalone:
                sup.standalone_sentinels.add(line_no)
        loop_safe = _LOOP_SAFE_RE.search(text)
        if loop_safe is not None:
            sup.loop_safe_lines.add(line_no)
            if standalone:
                sup.standalone_loop_safe.add(line_no)
        domain = _DOMAIN_RE.search(text)
        if domain is not None:
            sup.domain_lines[line_no] = domain.group("domain")
            if standalone:
                sup.standalone_domains.add(line_no)
    return sup
