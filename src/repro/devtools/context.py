"""Per-file analysis context shared by every reprolint rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .suppressions import Suppressions, parse_suppressions


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file.

    The file is read and parsed exactly once; every rule then walks the
    shared AST.  ``package_parts`` locates the file inside the ``repro``
    package (e.g. ``("core", "estimator.py")``) so rules can scope
    themselves to subpackages without caring where the repo is checked
    out.
    """

    path: Path
    source: str
    tree: ast.Module
    suppressions: Suppressions
    package_parts: tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def from_path(cls, path: Path) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
            package_parts=_package_parts(path),
        )

    def in_package(self, name: str) -> bool:
        """True when the file sits under ``repro/<name>/`` (any depth)."""
        return name in self.package_parts[:-1]

    @property
    def is_test_file(self) -> bool:
        name = self.path.name
        return name.startswith("test_") or name == "conftest.py"

    @property
    def module_is_trivial(self) -> bool:
        """True when the module holds at most a docstring."""
        body = self.tree.body
        if not body:
            return True
        return len(body) == 1 and (
            isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        )


def _package_parts(path: Path) -> tuple[str, ...]:
    """Path components after the innermost ``repro`` directory.

    Files outside any ``repro`` directory get an empty tuple, which
    makes every package-scoped rule a no-op for them.
    """
    parts = path.parts
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1 :]
    return ()
