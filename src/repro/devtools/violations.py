"""The :class:`Violation` record every reprolint rule emits."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any


@dataclass(frozen=True, order=True)
class Violation:
    """One rule breach at one source location.

    Ordering is (path, line, col, rule_id) so reports read top-to-bottom
    per file regardless of which rule fired first.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    @classmethod
    def at(
        cls,
        rule_id: str,
        path: Path | str,
        line: int,
        col: int,
        message: str,
    ) -> "Violation":
        return cls(
            path=str(path),
            line=line,
            col=col,
            rule_id=rule_id,
            message=message,
        )

    def format(self) -> str:
        """Render as the conventional ``path:line:col: ID message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
