"""Rule registry: how reprolint rules declare themselves.

A rule is a generator function taking a :class:`FileContext` and
yielding ``(line, col, message)`` tuples.  The :func:`rule` decorator
attaches the metadata (stable ID, slug, rationale) and registers it::

    @rule("R9", "no-sleep", "time.sleep in library code stalls the DES")
    def check_no_sleep(ctx):
        for node in ast.walk(ctx.tree):
            ...
            yield node.lineno, node.col_offset, "time.sleep(...) call"

IDs are stable contract: suppression comments, docs and CI output all
refer to them, so they are never reused for a different invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from .context import FileContext

CheckFn = Callable[[FileContext], Iterator[tuple[int, int, str]]]

_REGISTRY: dict[str, "Rule"] = {}


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    rule_id: str
    name: str
    rationale: str
    check: CheckFn

    def run(self, ctx: FileContext) -> Iterator[tuple[int, int, str]]:
        return self.check(ctx)


def rule(rule_id: str, name: str, rationale: str) -> Callable[[CheckFn], CheckFn]:
    """Register ``fn`` as the implementation of ``rule_id``."""

    def decorator(fn: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id, name=name, rationale=rationale, check=fn
        )
        return fn

    return decorator


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by ID."""
    return tuple(_REGISTRY[key] for key in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown rule {rule_id!r}; registered rules: {known}"
        ) from None


def resolve_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[Rule, ...]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    ``select`` names the only rules to run (default: all); ``ignore``
    removes rules from that set.  Unknown IDs raise ``KeyError`` so
    typos fail loudly instead of silently linting nothing.
    """
    if select is None:
        chosen = list(all_rules())
    else:
        chosen = [get_rule(rule_id) for rule_id in select]
    if ignore:
        dropped = {get_rule(rule_id).rule_id for rule_id in ignore}
        chosen = [r for r in chosen if r.rule_id not in dropped]
    return tuple(sorted(chosen, key=lambda r: r.rule_id))
