"""Rule registry: how reprolint rules declare themselves.

A rule is a generator function taking a :class:`FileContext` and
yielding ``(line, col, message)`` tuples.  The :func:`rule` decorator
attaches the metadata (stable ID, slug, rationale) and registers it::

    @rule("R9", "no-sleep", "time.sleep in library code stalls the DES")
    def check_no_sleep(ctx):
        for node in ast.walk(ctx.tree):
            ...
            yield node.lineno, node.col_offset, "time.sleep(...) call"

IDs are stable contract: suppression comments, docs and CI output all
refer to them, so they are never reused for a different invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .context import FileContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .program.context import ProgramContext

CheckFn = Callable[[FileContext], Iterator[tuple[int, int, str]]]
#: project rules see the whole program and must say *where* each hit is.
ProjectCheckFn = Callable[
    ["ProgramContext"], Iterator[tuple[Path | str, int, int, str]]
]

_REGISTRY: dict[str, "Rule"] = {}
_PROJECT_REGISTRY: dict[str, "ProjectRule"] = {}


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    rule_id: str
    name: str
    rationale: str
    check: CheckFn

    def run(self, ctx: FileContext) -> Iterator[tuple[int, int, str]]:
        return self.check(ctx)


def rule(rule_id: str, name: str, rationale: str) -> Callable[[CheckFn], CheckFn]:
    """Register ``fn`` as the implementation of ``rule_id``."""

    def decorator(fn: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id, name=name, rationale=rationale, check=fn
        )
        return fn

    return decorator


@dataclass(frozen=True)
class ProjectRule:
    """A registered whole-program rule (P-series).

    Unlike file rules, a project rule walks the :class:`ProgramContext`
    — import graph, call graph, cross-module indices — and therefore
    yields the *path* of each hit along with its location.
    """

    rule_id: str
    name: str
    rationale: str
    check: ProjectCheckFn

    def run(
        self, program: "ProgramContext"
    ) -> Iterator[tuple[Path | str, int, int, str]]:
        return self.check(program)


def project_rule(
    rule_id: str, name: str, rationale: str
) -> Callable[[ProjectCheckFn], ProjectCheckFn]:
    """Register ``fn`` as the implementation of project rule ``rule_id``."""

    def decorator(fn: ProjectCheckFn) -> ProjectCheckFn:
        if rule_id in _PROJECT_REGISTRY or rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _PROJECT_REGISTRY[rule_id] = ProjectRule(
            rule_id=rule_id, name=name, rationale=rationale, check=fn
        )
        return fn

    return decorator


def all_rules() -> tuple[Rule, ...]:
    """Every registered file rule, ordered by ID."""
    return tuple(_REGISTRY[key] for key in sorted(_REGISTRY))


def all_project_rules() -> tuple[ProjectRule, ...]:
    """Every registered project rule, ordered by ID."""
    return tuple(_PROJECT_REGISTRY[key] for key in sorted(_PROJECT_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown rule {rule_id!r}; registered rules: {known}"
        ) from None


def get_project_rule(rule_id: str) -> ProjectRule:
    try:
        return _PROJECT_REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_PROJECT_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown project rule {rule_id!r}; registered rules: {known}"
        ) from None


def resolve_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[Rule, ...]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    ``select`` names the only rules to run (default: all); ``ignore``
    removes rules from that set.  Unknown IDs raise ``KeyError`` so
    typos fail loudly instead of silently linting nothing.
    """
    if select is None:
        chosen = list(all_rules())
    else:
        chosen = [get_rule(rule_id) for rule_id in select]
    if ignore:
        dropped = {get_rule(rule_id).rule_id for rule_id in ignore}
        chosen = [r for r in chosen if r.rule_id not in dropped]
    return tuple(sorted(chosen, key=lambda r: r.rule_id))


def resolve_rule_sets(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[tuple[Rule, ...], tuple[ProjectRule, ...]]:
    """Partition ``--select`` / ``--ignore`` across both registries.

    IDs are validated against the *union* of file and project rules, so
    ``--select R1,P3`` works while a typo still fails loudly.
    """

    def lookup(rule_id: str) -> Rule | ProjectRule:
        if rule_id in _REGISTRY:
            return _REGISTRY[rule_id]
        if rule_id in _PROJECT_REGISTRY:
            return _PROJECT_REGISTRY[rule_id]
        known = ", ".join(sorted({**_REGISTRY, **_PROJECT_REGISTRY}))
        raise KeyError(
            f"unknown rule {rule_id!r}; registered rules: {known or '<none>'}"
        )

    if select is None:
        file_rules = list(all_rules())
        proj_rules = list(all_project_rules())
    else:
        chosen = [lookup(rule_id) for rule_id in select]
        file_rules = [r for r in chosen if isinstance(r, Rule)]
        proj_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    if ignore:
        dropped = {lookup(rule_id).rule_id for rule_id in ignore}
        file_rules = [r for r in file_rules if r.rule_id not in dropped]
        proj_rules = [r for r in proj_rules if r.rule_id not in dropped]
    return (
        tuple(sorted(file_rules, key=lambda r: r.rule_id)),
        tuple(sorted(proj_rules, key=lambda r: r.rule_id)),
    )
