"""File discovery and rule execution for reprolint."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .context import FileContext
from .registry import Rule, resolve_rules
from .violations import Violation

#: directory names never worth linting
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist"}
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules: tuple[Rule, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint, sorted."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(
                part in _SKIP_DIRS or part.endswith(".egg-info")
                for part in candidate.parts
            ):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_file(path: Path, rules: Sequence[Rule]) -> list[Violation]:
    """Run ``rules`` over one file, honouring suppression comments.

    A file that fails to parse yields a single synthetic ``PARSE``
    violation instead of crashing the whole run: the linter must keep
    working mid-refactor, when some files are transiently broken.
    """
    try:
        ctx = FileContext.from_path(path)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return [
            Violation.at("PARSE", path, line, 0, f"could not parse: {exc}")
        ]
    found: list[Violation] = []
    for rule_obj in rules:
        for line, col, message in rule_obj.run(ctx):
            if ctx.suppressions.is_suppressed(rule_obj.rule_id, line):
                continue
            found.append(
                Violation.at(rule_obj.rule_id, path, line, col, message)
            )
    return found


def lint_paths(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the active rule set."""
    rules = resolve_rules(select=select, ignore=ignore)
    report = LintReport(rules=rules)
    for path in iter_python_files(Path(p) for p in paths):
        report.files_checked += 1
        report.violations.extend(lint_file(path, rules))
    report.violations.sort()
    return report
