"""File discovery and rule execution for reprolint.

Two execution scopes share one report shape:

- **file scope** — every rule runs independently over each parsed file
  (:func:`lint_paths` with ``project=False``);
- **project scope** — the tree is additionally indexed into one
  :class:`~repro.devtools.program.context.ProgramContext` and the
  P-series whole-program rules run over it, with per-file suppression
  comments honoured at the violation's location and an optional
  committed baseline splitting pre-existing debt from new violations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .context import FileContext
from .registry import ProjectRule, Rule, resolve_rule_sets, resolve_rules
from .violations import Violation

#: directory names never worth linting
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist"}
)

#: sibling directories scanned as *evidence of use* in project scope
#: (rule P5); they are never linted themselves.
_CONSUMER_DIR_NAMES = ("tests", "examples", "benchmarks")

#: passes sharing the numeric dataflow index (see program/numflow.py)
_NUMERIC_RULE_IDS = frozenset({"P11", "P12", "P13", "P14"})


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules: tuple[Rule, ...] = ()
    project_rules: tuple[ProjectRule, ...] = ()
    #: violations excused by the committed baseline (project scope)
    baselined: list[Violation] = field(default_factory=list)
    #: baseline entries that no longer fire and must be removed
    stale_baseline: list[dict] = field(default_factory=list)
    #: wall-clock seconds per stage (``file_rules``, ``program_index``,
    #: ``numeric_index``, ``pass_<ID>``) — populated in project scope
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.stale_baseline


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint, sorted."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(
                part in _SKIP_DIRS or part.endswith(".egg-info")
                for part in candidate.parts
            ):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_file(path: Path, rules: Sequence[Rule]) -> list[Violation]:
    """Run ``rules`` over one file, honouring suppression comments.

    A file that fails to parse yields a single synthetic ``PARSE``
    violation instead of crashing the whole run: the linter must keep
    working mid-refactor, when some files are transiently broken.
    """
    try:
        ctx = FileContext.from_path(path)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return [
            Violation.at("PARSE", path, line, 0, f"could not parse: {exc}")
        ]
    found: list[Violation] = []
    for rule_obj in rules:
        for line, col, message in rule_obj.run(ctx):
            if ctx.suppressions.is_suppressed(rule_obj.rule_id, line):
                continue
            found.append(
                Violation.at(rule_obj.rule_id, path, line, col, message)
            )
    return found


def _resolve_only(
    only_files: Iterable[Path | str] | None,
) -> set[Path] | None:
    if only_files is None:
        return None
    return {Path(p).resolve() for p in only_files}


def lint_paths(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    only_files: Iterable[Path | str] | None = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the active rule set.

    ``only_files`` restricts the run to the named files (the
    ``--changed`` incremental mode); files under ``paths`` but outside
    the set are neither parsed nor counted.
    """
    rules = resolve_rules(select=select, ignore=ignore)
    report = LintReport(rules=rules)
    wanted = _resolve_only(only_files)
    for path in iter_python_files(Path(p) for p in paths):
        if wanted is not None and path.resolve() not in wanted:
            continue
        report.files_checked += 1
        report.violations.extend(lint_file(path, rules))
    report.violations.sort()
    return report


# ----------------------------------------------------------------------
# project scope
# ----------------------------------------------------------------------
def find_package_root(paths: Sequence[Path]) -> Path | None:
    """The package directory the project analysis should index.

    The first given directory that is itself a package (contains an
    ``__init__.py``) wins; a directory *containing* exactly one package
    (the ``src/repro`` layout given ``src``) is also accepted.
    """
    for path in paths:
        if not path.is_dir():
            continue
        if (path / "__init__.py").exists():
            return path
        packages = sorted(
            child
            for child in path.iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        )
        if len(packages) == 1:
            return packages[0]
    return None


def default_consumer_roots(package_root: Path) -> tuple[Path, ...]:
    """tests/examples/benchmarks directories near the package root."""
    anchors = [package_root.parent, package_root.parent.parent]
    roots: list[Path] = []
    for anchor in anchors:
        for name in _CONSUMER_DIR_NAMES:
            candidate = anchor / name
            if candidate.is_dir() and candidate not in roots:
                roots.append(candidate)
    return tuple(roots)


def lint_project(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline_path: Path | str | None = None,
    only_files: Iterable[Path | str] | None = None,
) -> LintReport:
    """File rules plus the P-series whole-program rules over one tree.

    With ``only_files`` (the ``--changed`` incremental mode) the file
    rules run over just those files and project-rule violations outside
    them are dropped, but the *index* still covers the whole tree —
    whole-program facts (layering, call graphs, numeric domains) are
    only correct when built from everything.  Stale-baseline entries
    are not reported in that mode: a violation outside the changed set
    is filtered away, not fixed.
    """
    from .program import compare, load_baseline
    from .program.context import ProgramContext

    path_list = [Path(p) for p in paths]
    file_rules, project_rules = resolve_rule_sets(
        select=select, ignore=ignore
    )
    report = LintReport(rules=file_rules, project_rules=project_rules)
    wanted = _resolve_only(only_files)
    started = time.perf_counter()
    for path in iter_python_files(path_list):
        if wanted is not None and path.resolve() not in wanted:
            continue
        report.files_checked += 1
        report.violations.extend(lint_file(path, file_rules))
    report.timings["file_rules"] = time.perf_counter() - started

    package_root = find_package_root(path_list)
    if package_root is None:
        report.violations.append(
            Violation.at(
                "PROJECT",
                path_list[0] if path_list else Path("."),
                1,
                0,
                "project scope needs a package directory (one containing "
                "__init__.py); none found in the given paths",
            )
        )
        report.violations.sort()
        return report

    started = time.perf_counter()
    program = ProgramContext.build(
        package_root,
        consumer_roots=default_consumer_roots(package_root),
    )
    report.timings["program_index"] = time.perf_counter() - started

    if any(r.rule_id in _NUMERIC_RULE_IDS for r in project_rules):
        # Pre-warm the shared numeric dataflow index so each numeric
        # pass's timing measures the pass itself, not the build.
        from .program.numflow import get_numeric_index

        started = time.perf_counter()
        get_numeric_index(program)
        report.timings["numeric_index"] = time.perf_counter() - started

    for rule_obj in project_rules:
        started = time.perf_counter()
        for v_path, line, col, message in rule_obj.run(program):
            if wanted is not None and Path(v_path).resolve() not in wanted:
                continue
            info = program.module_at(Path(v_path))
            if info is not None and info.ctx.suppressions.is_suppressed(
                rule_obj.rule_id, line
            ):
                continue
            report.violations.append(
                Violation.at(rule_obj.rule_id, v_path, line, col, message)
            )
        report.timings[f"pass_{rule_obj.rule_id}"] = (
            time.perf_counter() - started
        )

    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        comparison = compare(baseline, report.violations)
        report.violations = comparison.new
        report.baselined = comparison.baselined
        # A violation outside the changed set was filtered, not fixed —
        # staleness is only meaningful over a full-tree run.
        report.stale_baseline = [] if wanted is not None else comparison.stale
    report.violations.sort()
    return report
