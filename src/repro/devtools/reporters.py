"""Text and JSON renderings of a :class:`LintReport`."""

from __future__ import annotations

import json

from .runner import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``path:line:col: ID message`` per hit.

    The summary line always appears so CI logs show what ran even when
    the tree is clean.
    """
    lines = [v.format() for v in report.violations]
    noun = "violation" if len(report.violations) == 1 else "violations"
    lines.append(
        f"reprolint: {len(report.violations)} {noun} in "
        f"{report.files_checked} files "
        f"({len(report.rules)} rules active)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for editor/CI integration."""
    payload = {
        "violations": [v.to_dict() for v in report.violations],
        "files_checked": report.files_checked,
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "rationale": rule.rationale,
            }
            for rule in report.rules
        ],
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
