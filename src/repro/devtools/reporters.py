"""Text, JSON, and SARIF renderings of a :class:`LintReport`."""

from __future__ import annotations

import json
from pathlib import Path

from .runner import LintReport

#: rules with a pass-specific justification marker beyond the generic
#: ``# reprolint: disable=<ID>`` — the reporters surface the exact
#: syntax so a finding carries its own escape hatch.
_EXTRA_SUPPRESSIONS = {
    "R3": "# exact-sentinel: <reason>",
    "P6": "# event-loop-safe: <reason>",
    "P11": "# domain: <log|linear> <reason>",
    "P12": "# domain: <log|linear> <reason>",
}


def _suppression_help(rule_id: str) -> str:
    """How to suppress ``rule_id`` at a specific site."""
    base = f"# reprolint: disable={rule_id}"
    extra = _EXTRA_SUPPRESSIONS.get(rule_id)
    if extra is None:
        return f"Suppress with `{base}` on (or standalone above) the line."
    return (
        f"Suppress with `{base}` on (or standalone above) the line, or "
        f"justify the site with `{extra}`."
    )


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``path:line:col: ID message`` per hit.

    The summary line always appears so CI logs show what ran even when
    the tree is clean; baseline (ratchet) state is summarized when a
    baseline was in play.
    """
    lines = [v.format() for v in report.violations]
    for entry in report.stale_baseline:
        lines.append(
            f"{entry['path']}: {entry['rule']} STALE baseline entry "
            f"(x{entry['count']}) no longer fires — run "
            "--write-baseline to shrink the debt record: "
            f"{entry['message']}"
        )
    noun = "violation" if len(report.violations) == 1 else "violations"
    rule_count = len(report.rules) + len(report.project_rules)
    summary = (
        f"reprolint: {len(report.violations)} {noun} in "
        f"{report.files_checked} files "
        f"({rule_count} rules active)"
    )
    if report.baselined or report.stale_baseline:
        summary += (
            f" [baseline: {len(report.baselined)} excused, "
            f"{len(report.stale_baseline)} stale]"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for editor/CI integration."""
    payload = {
        "violations": [v.to_dict() for v in report.violations],
        "baselined": [v.to_dict() for v in report.baselined],
        "stale_baseline": list(report.stale_baseline),
        "files_checked": report.files_checked,
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "rationale": rule.rationale,
                "scope": "file",
                "suppression": _suppression_help(rule.rule_id),
            }
            for rule in report.rules
        ]
        + [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "rationale": rule.rationale,
                "scope": "project",
                "suppression": _suppression_help(rule.rule_id),
            }
            for rule in report.project_rules
        ],
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_uri(path: str, base: Path) -> str:
    """Repo-relative POSIX path when possible (what code scanning
    needs to anchor annotations), absolute URI otherwise."""
    resolved = Path(path).resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


def render_sarif(report: LintReport, base: Path | None = None) -> str:
    """SARIF 2.1.0 rendering for GitHub code scanning.

    One run, one ``reprolint`` driver carrying the full rule catalogue
    (file + project scope), one result per violation.  ``base``
    (default: the current working directory) anchors the repo-relative
    artifact URIs code scanning matches against the checkout.
    """
    base = (base or Path.cwd()).resolve()
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "help": {"text": _suppression_help(rule.rule_id)},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in (*report.rules, *report.project_rules)
    ]
    results = [
        {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(v.path, base),
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in report.violations
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
