"""Text and JSON renderings of a :class:`LintReport`."""

from __future__ import annotations

import json

from .runner import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``path:line:col: ID message`` per hit.

    The summary line always appears so CI logs show what ran even when
    the tree is clean; baseline (ratchet) state is summarized when a
    baseline was in play.
    """
    lines = [v.format() for v in report.violations]
    for entry in report.stale_baseline:
        lines.append(
            f"{entry['path']}: {entry['rule']} STALE baseline entry "
            f"(x{entry['count']}) no longer fires — run "
            "--write-baseline to shrink the debt record: "
            f"{entry['message']}"
        )
    noun = "violation" if len(report.violations) == 1 else "violations"
    rule_count = len(report.rules) + len(report.project_rules)
    summary = (
        f"reprolint: {len(report.violations)} {noun} in "
        f"{report.files_checked} files "
        f"({rule_count} rules active)"
    )
    if report.baselined or report.stale_baseline:
        summary += (
            f" [baseline: {len(report.baselined)} excused, "
            f"{len(report.stale_baseline)} stale]"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for editor/CI integration."""
    payload = {
        "violations": [v.to_dict() for v in report.violations],
        "baselined": [v.to_dict() for v in report.baselined],
        "stale_baseline": list(report.stale_baseline),
        "files_checked": report.files_checked,
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "rationale": rule.rationale,
                "scope": "file",
            }
            for rule in report.rules
        ]
        + [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "rationale": rule.rationale,
                "scope": "project",
            }
            for rule in report.project_rules
        ],
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
