"""``repro-lint`` — command-line entry point for reprolint.

Usage::

    repro-lint src/repro                  # file rules, text report
    repro-lint --project src/repro        # + whole-program rules P1-P14
    repro-lint --project --baseline .reprolint-baseline.json src/repro
    repro-lint --project --write-baseline src/repro   # reset the ratchet
    repro-lint --project --changed src/repro   # only files changed vs HEAD
    repro-lint --changed=main src/repro   # ... or vs any git ref
    repro-lint --graph docs/import-graph.dot src/repro  # export graph
    repro-lint --format json src/repro    # machine-readable output
    repro-lint --format sarif src/repro   # GitHub code-scanning upload
    repro-lint --select R1,P3 src/repro   # subset across both scopes
    repro-lint --list-rules               # rule catalogue with rationales

Exit codes: 0 clean, 1 violations found (or stale baseline entries),
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .registry import all_project_rules, all_rules
from .reporters import render_json, render_sarif, render_text
from .runner import (
    find_package_root,
    default_consumer_roots,
    lint_paths,
    lint_project,
)

DEFAULT_BASELINE = Path(".reprolint-baseline.json")


def _split_ids(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-aware static analysis for the repro codebase: "
            "determinism, log-space numerics, API invariants, and "
            "whole-program contracts (import layering, RNG provenance, "
            "determinism dataflow)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro if it "
        "exists, else the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0 "
        "for GitHub code scanning",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run exclusively (e.g. R1,P3)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also run the whole-program rules (P1-P14) over the tree",
    )
    parser.add_argument(
        "--changed",
        metavar="REF",
        nargs="?",
        const="HEAD",
        help="lint only files changed vs. the given git ref (default "
        "HEAD) plus untracked files; in project scope the whole tree is "
        "still indexed, but only changed files are reported on",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        help="ratchet file of pre-existing violations (implies "
        f"--project; default file: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current violations "
        "and exit 0 (implies --project)",
    )
    parser.add_argument(
        "--graph",
        metavar="FILE",
        help="export the module import graph (implies --project; "
        "Graphviz dot, or JSON when FILE ends in .json; '-' for stdout)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _changed_files(ref: str) -> set[Path] | None:
    """Python files changed vs. ``ref`` plus untracked ones, resolved.

    Returns ``None`` when git is unavailable or the ref does not
    resolve — the caller turns that into a usage error rather than
    silently linting nothing.
    """
    import subprocess

    commands = (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    changed: set[Path] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        for line in proc.stdout.splitlines():
            name = line.strip()
            if name.endswith(".py"):
                changed.add(Path(name).resolve())
    return changed


def _export_graph(destination: str, paths: list[Path]) -> int:
    import json as _json

    from .program.context import ProgramContext
    from .program.graph import render_dot, render_graph_json

    package_root = find_package_root(paths)
    if package_root is None:
        print(
            "repro-lint: --graph needs a package directory", file=sys.stderr
        )
        return 2
    program = ProgramContext.build(
        package_root, consumer_roots=default_consumer_roots(package_root)
    )
    if destination.endswith(".json"):
        rendered = _json.dumps(
            render_graph_json(program), indent=2, sort_keys=True
        )
    else:
        rendered = render_dot(program)
    if destination == "-":
        print(rendered)
    else:
        Path(destination).write_text(
            rendered if rendered.endswith("\n") else rendered + "\n",
            encoding="utf-8",
        )
        print(f"repro-lint: import graph written to {destination}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_obj in all_rules():
            print(f"{rule_obj.rule_id}  {rule_obj.name}")
            print(f"    {rule_obj.rationale}")
        for rule_obj in all_project_rules():
            print(f"{rule_obj.rule_id}  {rule_obj.name}  [project]")
            print(f"    {rule_obj.rationale}")
        return 0

    if options.baseline and Path(options.baseline).is_dir():
        # argparse's optional-argument greediness: `--baseline src/repro`
        # binds the path meant as a positional.  Catch it early.
        parser.error(
            f"--baseline got a directory ({options.baseline}); use "
            "--baseline=FILE, or put --baseline after the paths"
        )
    if options.changed and Path(options.changed).is_dir():
        # Same greediness trap: `--changed src/repro` binds the path.
        parser.error(
            f"--changed got a directory ({options.changed}); use "
            "--changed=REF, or put --changed after the paths"
        )

    paths = [Path(p) for p in options.paths]
    if not paths:
        default = Path("src/repro")
        paths = [default if default.is_dir() else Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(
            "no such file or directory: "
            + ", ".join(str(p) for p in missing)
        )

    project_mode = bool(
        options.project
        or options.baseline
        or options.write_baseline
        or options.graph
    )
    select = _split_ids(options.select) if options.select else None
    ignore = _split_ids(options.ignore) if options.ignore else None

    only_files: set[Path] | None = None
    if options.changed:
        if options.write_baseline:
            parser.error(
                "--write-baseline needs a full-tree run; drop --changed"
            )
        only_files = _changed_files(options.changed)
        if only_files is None:
            parser.error(
                f"--changed could not diff against {options.changed!r} "
                "(not a git repository, or unknown ref)"
            )

    if options.graph:
        status = _export_graph(options.graph, paths)
        if status != 0 or not (
            options.project or options.baseline or options.write_baseline
        ):
            return status

    try:
        if project_mode:
            baseline_path = (
                Path(options.baseline)
                if options.baseline
                else (DEFAULT_BASELINE if not options.write_baseline else None)
            )
            if options.write_baseline:
                report = lint_project(paths, select=select, ignore=ignore)
                target = Path(options.baseline or DEFAULT_BASELINE)
                from .program import write_baseline

                write_baseline(target, report.violations)
                print(
                    f"repro-lint: baseline written to {target} "
                    f"({len(report.violations)} entries)"
                )
                return 0
            report = lint_project(
                paths,
                select=select,
                ignore=ignore,
                baseline_path=(
                    baseline_path
                    if baseline_path and baseline_path.exists()
                    else None
                ),
                only_files=only_files,
            )
        else:
            report = lint_paths(
                paths, select=select, ignore=ignore, only_files=only_files
            )
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))

    if options.format == "json":
        print(render_json(report))
    elif options.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
