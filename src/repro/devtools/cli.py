"""``repro-lint`` — command-line entry point for reprolint.

Usage::

    repro-lint src/repro                  # lint, text report, exit 1 on hits
    repro-lint --format json src/repro    # machine-readable output
    repro-lint --select R1,R3 src/repro   # only the RNG + float-eq rules
    repro-lint --ignore R5 src/repro      # everything except R5
    repro-lint --list-rules               # rule catalogue with rationales

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .registry import all_rules
from .reporters import render_json, render_text
from .runner import lint_paths


def _split_ids(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-aware static analysis for the repro codebase: "
            "determinism, log-space numerics, and API invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro if it "
        "exists, else the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run exclusively (e.g. R1,R3)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_obj in all_rules():
            print(f"{rule_obj.rule_id}  {rule_obj.name}")
            print(f"    {rule_obj.rationale}")
        return 0

    paths = [Path(p) for p in options.paths]
    if not paths:
        default = Path("src/repro")
        paths = [default if default.is_dir() else Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(
            "no such file or directory: "
            + ", ".join(str(p) for p in missing)
        )

    try:
        report = lint_paths(
            paths,
            select=_split_ids(options.select) if options.select else None,
            ignore=_split_ids(options.ignore) if options.ignore else None,
        )
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))

    if options.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
