"""Rules P3/P4: determinism dataflow across the simulator.

**P3** — shuffle outcomes (paper Eq. 1 / Algorithm 1) are reproducible
only if DES event order never depends on hash order.  ``set`` iteration
order varies with ``PYTHONHASHSEED``; ``dict`` views are
insertion-ordered, which is deterministic per run but *history*-coupled
— two refactors that build the same mapping in different orders produce
different event interleavings and different RNG consumption.  The pass
therefore builds the program call graph, marks every function from
which a DES ``schedule()``/``schedule_at()`` call or heap push is
reachable ("event-affecting"), and flags iteration over sets and
unsorted dict views inside event-affecting functions (or functions
event-affecting code calls) in the simulator layers.  Iterations whose
loop body draws from an RNG are flagged regardless, since draw order is
part of the reproducibility contract.

**P4** — the simulator's only clock is ``Simulator.now``.  A wall-clock
read (``time.time``, ``datetime.now``, ...) inside ``sim``/``cloudsim``
couples results to the host machine; ``time.sleep`` stalls the DES.
Both passes scope to ``_SIM_LAYERS`` and deliberately exclude the
``service`` layer: there wall-clock time *is* the clock (real sockets,
real token-refill intervals), so ``time.monotonic`` is its legitimate
time source — only its RNG discipline is checked, by P2.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .callgraph import CallGraph, build_call_graph
from .context import ModuleInfo, ProgramContext

__all__ = ["event_affecting_functions"]

#: layers the determinism passes govern.  ``service`` is intentionally
#: absent: it is the live socket layer where wall-clock time is the
#: real clock, so P4's wall-clock ban does not apply to it.
_SIM_LAYERS = frozenset({"sim", "cloudsim"})

#: attribute names that put a callback on the DES event queue or a heap.
_SCHEDULING_ATTRS = frozenset(
    {"schedule", "schedule_at", "heappush", "heapify", "heappushpop"}
)
_SCHEDULING_NAMES = frozenset({"heappush", "heapify", "heappushpop"})

#: Generator draw methods: consuming randomness inside an unordered
#: loop makes the stream depend on iteration order.
_RNG_DRAWS = frozenset(
    {
        "shuffle",
        "permutation",
        "choice",
        "integers",
        "random",
        "uniform",
        "normal",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "standard_normal",
    }
)

_DICT_VIEWS = frozenset({"keys", "values", "items"})
#: wrappers that preserve the order of what they wrap — look through.
_ORDER_PRESERVING = frozenset(
    {"list", "tuple", "enumerate", "reversed", "iter"}
)
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet"})
_DICT_ANNOTATIONS = frozenset(
    {"dict", "Dict", "defaultdict", "DefaultDict", "OrderedDict", "Mapping"}
)


def event_affecting_functions(graph: CallGraph) -> set[str]:
    """Functions from which an event-queue mutation is reachable."""
    seeds: set[str] = set()
    for qualname, fn in graph.functions.items():
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and _is_scheduling_call(node):
                seeds.add(qualname)
                break
    return graph.transitive_callers(seeds)


def _is_scheduling_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in _SCHEDULING_ATTRS
    if isinstance(func, ast.Name):
        return func.id in _SCHEDULING_NAMES
    return False


# ----------------------------------------------------------------------
# annotation harvesting
# ----------------------------------------------------------------------
def _annotation_kind(annotation: ast.AST | None) -> str | None:
    """"set" / "dict" / None for a type annotation node."""
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        node = node.value
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name in _SET_ANNOTATIONS:
        return "set"
    if name in _DICT_ANNOTATIONS:
        return "dict"
    return None


def _attribute_kinds(info: ModuleInfo) -> dict[str, str]:
    """attr name -> "set"/"dict" from class-level and self annotations."""
    kinds: dict[str, str] = {}
    for node in ast.walk(info.ctx.tree):
        if isinstance(node, ast.AnnAssign):
            kind = _annotation_kind(node.annotation)
            if kind is None:
                continue
            target = node.target
            if isinstance(target, ast.Name):
                kinds[target.id] = kind
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                kinds[target.attr] = kind
    return kinds


def _local_kinds(fn_node: ast.AST) -> dict[str, str]:
    """Local/param name -> "set"/"dict" inside one function."""
    kinds: dict[str, str] = {}
    if isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn_node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            kind = _annotation_kind(arg.annotation)
            if kind is not None:
                kinds[arg.arg] = kind
    for node in ast.walk(fn_node):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            kind = _annotation_kind(node.annotation)
            if kind is not None:
                kinds[node.target.id] = kind
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            kind = _value_kind(node.value)
            if kind is not None:
                kinds[target.id] = kind
    return kinds


def _value_kind(value: ast.AST) -> str | None:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in ("set", "frozenset"):
            return "set"
        if value.func.id in ("dict", "defaultdict", "OrderedDict"):
            return "dict"
    return None


# ----------------------------------------------------------------------
# iterable classification
# ----------------------------------------------------------------------
def _classify_iterable(
    node: ast.AST,
    local_kinds: dict[str, str],
    attr_kinds: dict[str, str],
) -> str | None:
    """"set" / "dict-view" when iterating ``node`` is order-unstable."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                return None
            if func.id in ("set", "frozenset"):
                return "set"
            if func.id in _ORDER_PRESERVING and node.args:
                return _classify_iterable(
                    node.args[0], local_kinds, attr_kinds
                )
            return None
        if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS:
            return "dict-view"
        return None
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Name):
        kind = local_kinds.get(node.id)
        return {"set": "set", "dict": "dict-view"}.get(kind or "")
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            kind = attr_kinds.get(node.attr)
        else:
            kind = attr_kinds.get(node.attr)
        return {"set": "set", "dict": "dict-view"}.get(kind or "")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        left = _classify_iterable(node.left, local_kinds, attr_kinds)
        right = _classify_iterable(node.right, local_kinds, attr_kinds)
        if "set" in (left, right):
            return "set"
    return None


def _iterations(
    fn_node: ast.AST,
) -> Iterator[tuple[ast.AST, ast.AST | None]]:
    """(iterable expression, loop body container) pairs in a function.

    Comprehension generators yield ``None`` for the body: their element
    expressions cannot schedule, but their *order* still matters when
    the result feeds event scheduling, which the enclosing-function
    check covers.
    """
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in node.generators:
                yield generator.iter, None


def _draws_rng(body: ast.AST | None) -> bool:
    if body is None:
        return False
    for node in ast.walk(body):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RNG_DRAWS
        ):
            return True
    return False


@project_rule(
    "P3",
    "unordered-iteration",
    "DES event order and RNG draw order are part of the reproducibility "
    "contract (PYTHONHASHSEED must not change campaign metrics); "
    "iterating a set, or an unsorted dict view, on any path that feeds "
    "schedule()/heap pushes or consumes randomness makes event order "
    "hash- or history-dependent — iterate sorted(...) instead.",
)
def check_unordered_iteration(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    graph = build_call_graph(program)
    affecting = event_affecting_functions(graph)
    called_by_affecting = {
        target
        for qualname in affecting
        for site in graph.calls_in(qualname)
        for target in site.targets
    }
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if _layer(fn.module) not in _SIM_LAYERS:
            continue
        info = program.modules.get(fn.module)
        if info is None or info.ctx.is_test_file:
            continue
        relevant = (
            qualname in affecting or qualname in called_by_affecting
        )
        attr_kinds = _attribute_kinds(info)
        local_kinds = _local_kinds(fn.node)
        for iterable, body in _iterations(fn.node):
            kind = _classify_iterable(iterable, local_kinds, attr_kinds)
            if kind is None:
                continue
            if not relevant and not _draws_rng(body):
                continue
            reason = (
                "event order becomes PYTHONHASHSEED-dependent"
                if kind == "set"
                else "event order becomes insertion-history-dependent"
            )
            yield (
                info.ctx.path,
                iterable.lineno,
                iterable.col_offset,
                f"iteration over a {kind} in event-affecting "
                f"`{_short(qualname)}`: {reason}; iterate "
                "sorted(...) for a canonical order",
            )


@project_rule(
    "P4",
    "no-wall-clock",
    "Simulation time is Simulator.now and nothing else; a wall-clock "
    "read in sim/cloudsim couples campaign results to host speed and "
    "breaks trace reproducibility, and time.sleep() stalls the event "
    "loop.",
)
def check_no_wall_clock(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    for info in program.project_modules():
        if _layer(info.name) not in _SIM_LAYERS or info.ctx.is_test_file:
            continue
        banned_bare = _wall_clock_bare_names(info)
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            offense = _wall_clock_offense(node.func, banned_bare)
            if offense is not None:
                yield (
                    info.ctx.path,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read `{offense}` in the simulator; use "
                    "the DES clock (ctx.now / Simulator.now)",
                )


_WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)
_WALL_CLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})


def _wall_clock_bare_names(info: ModuleInfo) -> dict[str, str]:
    """Locally bound names that are wall-clock reads (from-imports)."""
    banned: dict[str, str] = {}
    for record in info.imports:
        if record.target == "time":
            for local, original in record.bindings():
                if original in _WALL_CLOCK_TIME_ATTRS:
                    banned[local] = f"time.{original}"
    return banned


def _wall_clock_offense(
    func: ast.AST, banned_bare: dict[str, str]
) -> str | None:
    if isinstance(func, ast.Name):
        return banned_bare.get(func.id)
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "time" and func.attr in _WALL_CLOCK_TIME_ATTRS:
                return f"time.{func.attr}"
            if (
                base.id in ("datetime", "date")
                and func.attr in _WALL_CLOCK_DT_ATTRS
            ):
                return f"{base.id}.{func.attr}"
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "datetime"
            and base.attr in ("datetime", "date")
            and func.attr in _WALL_CLOCK_DT_ATTRS
        ):
            return f"datetime.{base.attr}.{func.attr}"
    return None


def _layer(module: str) -> str | None:
    parts = module.split(".")
    return parts[1] if len(parts) >= 2 else None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname
