"""Async dataflow plumbing shared by the concurrency passes (P6-P10).

Three cross-module indices over the :class:`~repro.devtools.program.
callgraph.CallGraph`, built once per run and consumed by the
concurrency-era project rules:

- **task roots** — where coroutines enter the event loop.  A root is a
  coroutine handed to ``asyncio.create_task``/``ensure_future``/
  ``gather``, the main coroutine of ``asyncio.run``/
  ``run_until_complete``, or a connection handler registered with
  ``asyncio.start_server`` (which the loop spawns as a fresh task per
  connection).  Roots are the unit of concurrency: two functions
  reachable from *different* roots can interleave at every ``await``.
- **forward reachability** — the call-graph closure from a set of
  roots, following the same over-approximate edges the other P-passes
  use (missing an edge hides a bug; a spurious one at worst asks for a
  justification comment).
- **attribute writes** — every ``self.<attr>`` mutation site (plain /
  augmented / subscript assignment, and in-place mutator calls such as
  ``.add``/``.append``/``.update``), attributed to its enclosing
  function, with ``async with <...lock...>`` protection recorded so the
  race pass can honour lock discipline.  Constructor writes
  (``__init__``/``__post_init__``) are excluded: an object under
  construction is not yet shared between tasks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .callgraph import CallGraph, FunctionInfo

__all__ = [
    "AttrWrite",
    "TaskRoot",
    "collect_attr_writes",
    "container_attr_kinds",
    "find_task_roots",
    "reachable_from",
]

#: calls that schedule their coroutine argument as a concurrent task.
_SPAWNERS = frozenset({"create_task", "ensure_future"})
#: calls whose coroutine argument becomes the loop's main task.
_MAIN_RUNNERS = frozenset({"run", "run_until_complete"})
#: calls taking a *reference* to a per-connection handler coroutine.
_SERVER_CALLS = frozenset({"start_server", "start_unix_server"})
#: gather-style calls: every coroutine argument runs concurrently.
_GATHERERS = frozenset({"gather"})

#: in-place mutator methods counted as attribute writes.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

#: object-constructing initialisers whose writes are pre-sharing.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})

_SET_NAMES = frozenset({"set", "frozenset", "Set", "FrozenSet"})
_DICT_NAMES = frozenset(
    {"dict", "Dict", "defaultdict", "DefaultDict", "OrderedDict", "Mapping"}
)
_LIST_NAMES = frozenset(
    {"list", "List", "deque", "Deque", "Sequence", "MutableSequence"}
)


@dataclass(frozen=True)
class TaskRoot:
    """One function the event loop runs as (or inside) its own task."""

    qualname: str
    kind: str  # "task" | "main" | "server-handler"
    spawned_in: str  # qualname of the function doing the spawning
    line: int


@dataclass(frozen=True)
class AttrWrite:
    """One ``self.<attr>`` mutation site."""

    module: str
    cls: str
    attr: str
    qualname: str  # enclosing function
    line: int
    col: int
    locked: bool  # inside ``[async] with <...lock...>:``


# ----------------------------------------------------------------------
# task-root discovery
# ----------------------------------------------------------------------
def find_task_roots(graph: CallGraph) -> list[TaskRoot]:
    """Every discovered entry point of a concurrent task, sorted."""
    roots: list[TaskRoot] = []
    for caller, sites in graph.calls.items():
        caller_fn = graph.functions.get(caller)
        inner = {
            (site.node_line, site.node_col): site for site in sites
        }
        for site in sites:
            name = _call_name(site.call)
            if name is None:
                continue
            if name in _SPAWNERS or name in _MAIN_RUNNERS:
                args = site.call.args
                if args and isinstance(args[0], ast.Call):
                    kind = "task" if name in _SPAWNERS else "main"
                    for target in _inner_targets(inner, args[0]):
                        roots.append(TaskRoot(
                            qualname=target,
                            kind=kind,
                            spawned_in=caller,
                            line=site.node_line,
                        ))
            elif name in _GATHERERS:
                for arg in site.call.args:
                    if isinstance(arg, ast.Call):
                        for target in _inner_targets(inner, arg):
                            roots.append(TaskRoot(
                                qualname=target,
                                kind="task",
                                spawned_in=caller,
                                line=site.node_line,
                            ))
            elif name in _SERVER_CALLS and site.call.args:
                for target in _reference_targets(
                    graph, caller_fn, site.call.args[0]
                ):
                    roots.append(TaskRoot(
                        qualname=target,
                        kind="server-handler",
                        spawned_in=caller,
                        line=site.node_line,
                    ))
    return sorted(
        set(roots), key=lambda r: (r.qualname, r.spawned_in, r.line)
    )


def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _inner_targets(
    inner: dict[tuple[int, int], object], arg: ast.Call
) -> tuple[str, ...]:
    """Targets of a coroutine-producing call passed as an argument.

    The inner call was itself recorded as a call site of the same
    caller; look it up by position.
    """
    site = inner.get((arg.lineno, arg.col_offset))
    targets = getattr(site, "targets", ())
    return tuple(targets)


def _reference_targets(
    graph: CallGraph, caller_fn: FunctionInfo | None, node: ast.AST
) -> tuple[str, ...]:
    """Resolve a function *reference* (not a call) like ``self._handle``."""
    if isinstance(node, ast.Attribute):
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
            and caller_fn is not None
            and caller_fn.cls is not None
        ):
            methods = graph.class_methods.get(
                (caller_fn.module, caller_fn.cls), {}
            )
            if node.attr in methods:
                return (methods[node.attr],)
        return tuple(sorted(graph.by_name.get(node.attr, [])))
    if isinstance(node, ast.Name):
        if caller_fn is not None:
            defs = graph.module_defs.get(caller_fn.module, {})
            if node.id in defs and defs[node.id] in graph.functions:
                return (defs[node.id],)
        return tuple(sorted(graph.by_name.get(node.id, [])))
    return ()


# ----------------------------------------------------------------------
# forward reachability
# ----------------------------------------------------------------------
def reachable_from(
    graph: CallGraph,
    seeds: set[str],
    skip_names: frozenset[str] = frozenset(),
    stop: frozenset[str] = frozenset(),
) -> set[str]:
    """``seeds`` plus every function a seed can call, transitively.

    ``skip_names`` prunes traversal: functions with those bare names
    are neither entered nor expanded (used to keep telemetry surfaces
    like ``snapshot`` off the hot-path closure).  ``stop`` prunes by
    qualname — the race pass passes the *other* task roots here, so a
    spawner's closure ends where the spawned coroutine's own task
    begins (the spawn edge would otherwise attribute every write inside
    a task to whoever created it).
    """
    reached = set(seeds)
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        for site in graph.calls_in(current):
            for target in site.targets:
                if target in reached or target in stop:
                    continue
                fn = graph.functions.get(target)
                if fn is not None and fn.name in skip_names:
                    continue
                reached.add(target)
                frontier.append(target)
    return reached


# ----------------------------------------------------------------------
# attribute writes
# ----------------------------------------------------------------------
def collect_attr_writes(graph: CallGraph) -> list[AttrWrite]:
    """Every post-construction ``self.<attr>`` mutation in the program."""
    writes: list[AttrWrite] = []
    for qualname, fn in graph.functions.items():
        if fn.cls is None or fn.name in _CONSTRUCTORS:
            continue
        lock_ranges = _lock_ranges(fn.node)
        for node in ast.walk(fn.node):
            for attr, line, col in _write_targets(node):
                writes.append(AttrWrite(
                    module=fn.module,
                    cls=fn.cls,
                    attr=attr,
                    qualname=qualname,
                    line=line,
                    col=col,
                    locked=any(
                        lo <= line <= hi for lo, hi in lock_ranges
                    ),
                ))
    return writes


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _write_targets(node: ast.AST) -> list[tuple[str, int, int]]:
    """(attr, line, col) for each self-attribute mutation in ``node``."""
    found: list[tuple[str, int, int]] = []
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            attr = _self_attr(target)
            if attr is None and isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
            if attr is not None:
                found.append((attr, target.lineno, target.col_offset))
    elif isinstance(node, ast.Call) and isinstance(
        node.func, ast.Attribute
    ):
        if node.func.attr in _MUTATORS:
            attr = _self_attr(node.func.value)
            if attr is not None:
                found.append((attr, node.lineno, node.col_offset))
    return found


def _lock_ranges(fn_node: ast.AST) -> list[tuple[int, int]]:
    """Line spans of ``[async] with`` blocks over a lock-named object."""
    ranges: list[tuple[int, int]] = []
    for node in ast.walk(fn_node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if any(
            _mentions_lock(item.context_expr) for item in node.items
        ):
            end = getattr(node, "end_lineno", None) or node.lineno
            ranges.append((node.lineno, end))
    return ranges


def _mentions_lock(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Name):
            name = sub.id
        if name is not None and "lock" in name.lower():
            return True
    return False


# ----------------------------------------------------------------------
# container-typed attributes
# ----------------------------------------------------------------------
def container_attr_kinds(tree: ast.Module) -> dict[str, str]:
    """attr name -> "set"/"dict"/"list" for one module's classes.

    Harvested from annotations (class-level or ``self.x: set[...]``)
    and from constructor-shaped assignments (``self.x = {}``,
    ``self.x = set()``, literals and comprehensions).
    """
    kinds: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            kind = _annotation_container(node.annotation)
            target = node.target
            attr = _self_attr(target)
            if attr is None and isinstance(target, ast.Name):
                attr = target.id
            if kind is not None and attr is not None:
                kinds.setdefault(attr, kind)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr = _self_attr(node.targets[0])
            kind = _value_container(node.value)
            if attr is not None and kind is not None:
                kinds.setdefault(attr, kind)
    return kinds


def _annotation_container(annotation: ast.AST | None) -> str | None:
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        node = node.value
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name in _SET_NAMES:
        return "set"
    if name in _DICT_NAMES:
        return "dict"
    if name in _LIST_NAMES:
        return "list"
    return None


def _value_container(value: ast.AST) -> str | None:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, ast.Call):
        name = None
        if isinstance(value.func, ast.Name):
            name = value.func.id
        elif isinstance(value.func, ast.Attribute):
            name = value.func.attr
        if name in ("set", "frozenset"):
            return "set"
        if name in ("dict", "defaultdict", "OrderedDict"):
            return "dict"
        if name in ("list", "deque"):
            return "list"
    return None
