"""Rule P8: everything submitted to the process pool must pickle.

The execution runtime (PR 3) ships work to worker processes: a
:class:`repro.runtime.Task` is pickled, its ``fn`` re-imported by
dotted reference on the worker, and its ``params`` round-tripped
through canonical JSON so cached and fresh results are byte-identical.
That contract breaks *at runtime, on the worker, mid-sweep* when a call
site hands the runtime something unpicklable — a lambda, a closure over
local state, a bound method dragging its instance along, a
``functools.partial`` — or params outside the JSON data model (sets,
bytes).  The failure is far from the bug: the sweep dies inside the
pool with a pickling traceback, or worse, fingerprints stop being pure
functions of the task.  This pass checks the discipline statically at
every ``Task(...)`` construction and every ``pool.submit(...)`` call.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .context import ModuleInfo, ProgramContext

__all__ = []

#: receivers whose ``.submit(...)`` we treat as a process-pool boundary.
_POOL_HINTS = ("pool", "executor")

#: params values outside the JSON data model the runtime canonicalizes.
_NON_JSON = {
    ast.Lambda: "a lambda",
    ast.Set: "a set literal",
}


def _task_local_names(info: ModuleInfo) -> tuple[set[str], set[str]]:
    """Local names bound to the runtime Task class / submit aliases.

    Returns ``(ctor_names, module_aliases)``: bare names that construct
    a runtime ``Task``, and module aliases through which ``X.Task(...)``
    reaches it.
    """
    ctor: set[str] = set()
    aliases: set[str] = set()
    for record in info.imports:
        runtime = "runtime" in record.target.split(".")
        if not runtime:
            continue
        if record.names:
            for local, original in record.bindings():
                if original == "Task":
                    ctor.add(local)
        elif record.module_alias is not None:
            aliases.add(record.module_alias)
    return ctor, aliases


def _is_task_ctor(
    call: ast.Call, ctor: set[str], aliases: set[str]
) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in ctor
    if isinstance(func, ast.Attribute) and func.attr == "Task":
        value = func.value
        while isinstance(value, ast.Attribute):
            value = value.value
        return isinstance(value, ast.Name) and value.id in aliases
    return False


def _nested_def_names(tree: ast.Module) -> set[str]:
    """Names of functions defined *inside* another function: closures
    the pickle protocol cannot reach by dotted reference."""
    nested: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _module_level_defs(tree: ast.Module) -> set[str]:
    return {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _fn_argument(call: ast.Call) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == "fn":
            return keyword.value
    if call.args:
        return call.args[0]
    return None


def _params_argument(call: ast.Call) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == "params":
            return keyword.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


def _unpicklable_fn(
    fn: ast.expr, nested: set[str], toplevel: set[str]
) -> str | None:
    """Reason the ``fn`` expression cannot be re-imported by a worker."""
    if isinstance(fn, ast.Lambda):
        return "a lambda (unpicklable; workers re-import fn by name)"
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
        if fn.value.id in ("self", "cls"):
            return (
                f"the bound method `{fn.value.id}.{fn.attr}` (drags its "
                "instance across the pickle boundary)"
            )
    if isinstance(fn, ast.Call):
        func = fn.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "partial":
            return (
                "a functools.partial (captures arguments outside the "
                "JSON-canonical params)"
            )
    if isinstance(fn, ast.Name):
        if fn.id in nested and fn.id not in toplevel:
            return (
                f"the nested function `{fn.id}` (a closure; workers "
                "cannot import it by dotted reference)"
            )
    return None


def _non_json_params(params: ast.expr) -> Iterator[tuple[ast.expr, str]]:
    if not isinstance(params, ast.Dict):
        return
    for value in params.values:
        for node in ast.walk(value):
            for kind, label in _NON_JSON.items():
                if isinstance(node, kind):
                    yield node, label
                    break
            else:
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, bytes
                ):
                    yield node, "bytes"
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")
                ):
                    yield node, f"a {node.func.id}() value"


def _submit_receiver(call: ast.Call) -> str | None:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
        return None
    value = func.value
    while isinstance(value, ast.Attribute):
        value = value.value
    if isinstance(value, ast.Name):
        lowered = value.id.lower()
        if any(hint in lowered for hint in _POOL_HINTS):
            return value.id
    return None


@project_rule(
    "P8",
    "executor-submission",
    "Work shipped to the process pool is pickled and its params are "
    "round-tripped through canonical JSON; a lambda, closure, bound "
    "method, functools.partial, or set/bytes param dies on the worker "
    "mid-sweep (or corrupts fingerprint purity) far from the call site "
    "— submit module-level functions with JSON-encodable params only.",
)
def check_executor_submissions(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    for info in program.project_modules():
        if info.ctx.is_test_file:
            continue
        ctor, aliases = _task_local_names(info)
        tree = info.ctx.tree
        nested = _nested_def_names(tree)
        toplevel = _module_level_defs(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_task_ctor(node, ctor, aliases):
                fn = _fn_argument(node)
                if fn is not None:
                    reason = _unpicklable_fn(fn, nested, toplevel)
                    if reason is not None:
                        yield (
                            info.ctx.path,
                            fn.lineno,
                            fn.col_offset,
                            f"Task(fn=...) given {reason}; use a "
                            "module-level function reference",
                        )
                params = _params_argument(node)
                if params is not None:
                    for bad, label in _non_json_params(params):
                        yield (
                            info.ctx.path,
                            bad.lineno,
                            bad.col_offset,
                            f"Task params contain {label}, outside the "
                            "JSON data model the runtime canonicalizes "
                            "(use list/dict/str/number/bool/None)",
                        )
                continue
            receiver = _submit_receiver(node)
            if receiver is not None and node.args:
                reason = _unpicklable_fn(node.args[0], nested, toplevel)
                if reason is not None:
                    yield (
                        info.ctx.path,
                        node.args[0].lineno,
                        node.args[0].col_offset,
                        f"`{receiver}.submit(...)` given {reason}; "
                        "worker processes can only unpickle "
                        "module-level functions",
                    )
