"""Rule P5: public-API surface vs. actual cross-module use.

Every ``__init__.py`` ``__all__`` entry is a promise.  This pass checks
the promise two ways:

- **broken export** — the name is listed but never bound in the
  ``__init__`` (a refactor moved the symbol and forgot the facade);
- **dead export** — no module outside the exporting package (library,
  tests, examples, or benchmarks) ever imports or attribute-references
  the name.  Dead surface is where bit-rot hides: it compiles, it is
  advertised, and nothing would notice if it broke.

Uses are counted statically: ``from pkg import name``, ``from
pkg.sub import name``, plain submodule imports, and one-hop attribute
access through a bound module alias (``alias.name``).  Dynamic access
(``getattr``, ``importlib``) is invisible — suppress such exports with
a justification comment on the ``__all__`` entry.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .context import ModuleInfo, ProgramContext

__all__ = ["exported_names", "collect_uses"]


def exported_names(info: ModuleInfo) -> list[tuple[str, int, int]]:
    """``__all__`` entries of a module with their source locations."""
    exports: list[tuple[str, int, int]] = []
    for node in info.ctx.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    exports.append(
                        (element.value, element.lineno, element.col_offset)
                    )
    return exports


def _bound_names(info: ModuleInfo) -> set[str]:
    """Names bound at module level (defs, classes, assigns, imports)."""
    bound: set[str] = set()
    for node in info.ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # conditional imports (optional deps) still bind on one arm
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    bound.update(_import_bound(child))
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        bound.update(_target_names(target))
    for record in info.imports:
        if record.names:
            for local, _ in record.bindings():
                bound.add(local)
        elif record.module_alias is not None:
            bound.add(record.module_alias)
    return bound


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names |= _target_names(element)
        return names
    return set()


def _import_bound(node: ast.Import | ast.ImportFrom) -> set[str]:
    bound = set()
    for alias in node.names:
        if alias.asname is not None:
            bound.add(alias.asname)
        elif isinstance(node, ast.Import):
            bound.add(alias.name.split(".", 1)[0])
        else:
            bound.add(alias.name)
    return bound


def collect_uses(program: ProgramContext) -> set[tuple[str, str]]:
    """All observed (module prefix, name) uses across the program.

    A pair ``("repro.core", "greedy_sizes")`` means some module imported
    or attribute-accessed ``greedy_sizes`` through ``repro.core`` or one
    of its submodules.  The *user's* own package is recorded alongside
    so callers can exclude intra-package uses.
    """
    uses: set[tuple[str, str]] = set()
    for info in program.all_modules():
        module_aliases: dict[str, str] = {}
        for record in info.imports:
            target = record.target
            if record.names:
                if program.is_internal(target):
                    # `from repro.experiments.fig3 import run` is a use
                    # of `experiments` in repro and `fig3` in
                    # repro.experiments: the dotted path exercises every
                    # facade it traverses.
                    parts = target.split(".")
                    for index in range(1, len(parts)):
                        prefix = ".".join(parts[:index])
                        uses.add(
                            (f"{info.package}|{prefix}", parts[index])
                        )
                for local, original in record.bindings():
                    uses.add((f"{info.package}|{target}", original))
                    # The bound name may itself be a module: remember it
                    # so `local.attr` counts as a use through it.
                    submodule = f"{target}.{original}"
                    if program.is_internal(submodule):
                        module_aliases[local] = submodule
                    elif program.is_internal(target):
                        module_aliases.setdefault(local, target)
            elif record.module_alias is not None and program.is_internal(
                target
            ):
                # `import repro.core.greedy` is a use of every package
                # on the dotted path.
                parts = target.split(".")
                for index in range(1, len(parts)):
                    prefix = ".".join(parts[:index])
                    uses.add((f"{info.package}|{prefix}", parts[index]))
                if record.module_alias == parts[0]:
                    module_aliases.setdefault(parts[0], parts[0])
                else:
                    module_aliases[record.module_alias] = target
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attribute_chain(node)
            if chain is None:
                continue
            head, *attrs = chain
            base = module_aliases.get(head)
            if base is None or not attrs:
                continue
            # alias.a.b: each dotted step may step into a subpackage.
            current = base
            for attr in attrs:
                uses.add((f"{info.package}|{current}", attr))
                current = f"{current}.{attr}"
    return uses


def _attribute_chain(node: ast.Attribute) -> list[str] | None:
    parts = [node.attr]
    value: ast.AST = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
        return list(reversed(parts))
    return None


@project_rule(
    "P5",
    "dead-export",
    "__all__ is the public contract the API tests enforce; an entry "
    "nothing imports is unmaintained surface where regressions hide, "
    "and an entry that no longer resolves is a broken promise — both "
    "surface here so the facade and the implementation cannot drift.",
)
def check_dead_exports(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    uses = collect_uses(program)

    def used_outside(package: str, name: str) -> bool:
        for user_package_prefix, used_name in uses:
            user_package, prefix = user_package_prefix.split("|", 1)
            if used_name != name:
                continue
            # exclude uses from inside the exporting package itself
            if user_package == package or user_package.startswith(
                package + "."
            ):
                continue
            if prefix == package or prefix.startswith(package + "."):
                return True
        return False

    for info in program.project_modules():
        if not info.is_package:
            continue
        bound = _bound_names(info)
        for name, line, col in exported_names(info):
            if name not in bound:
                yield (
                    info.ctx.path,
                    line,
                    col,
                    f"__all__ lists `{name}` but {info.name} never binds "
                    "it — broken export",
                )
            elif not used_outside(info.name, name):
                yield (
                    info.ctx.path,
                    line,
                    col,
                    f"export `{name}` of {info.name} has no cross-module "
                    "use (library, tests, examples); drop it from "
                    "__all__ or add coverage",
                )
