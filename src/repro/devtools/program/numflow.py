"""Numeric value-domain dataflow shared by the numeric passes (P11-P14).

The paper's estimator chain works almost entirely in log-space: every
probability is a ratio of binomial coefficients computed via
``math.lgamma`` and exponentiated last (see
:mod:`repro.core.combinatorics`).  That convention is invisible to the
type system — a log-probability, a linear probability, and a replica
count are all ``float`` — so confusing the domains produces silently
wrong numbers, not exceptions.  This module makes the convention a
checked property: a small value-domain lattice inferred from
*provenance*, per-function flow-insensitive environments, and
interprocedural return summaries iterated to a fixpoint over the
:class:`~repro.devtools.program.callgraph.CallGraph`.

The lattice (:class:`Domain`):

- ``LOG`` — born from ``lgamma``/``log``/``log1p``/``logsumexp``/...;
- ``LINEAR_RAW`` — crossed ``exp``/``expm1`` back to linear scale but
  was never clamped: cancellation and ulp leaks can push it outside
  ``[0, 1]`` (the PR 1 ``survival_probabilities`` clip bug class);
- ``LINEAR`` — a validated probability: a ``[0, 1]`` float constant, a
  ``np.clip(x, 0, 1)``/``min(1.0, raw)`` result, or annotated
  ``# domain: linear <reason>``;
- ``COUNT`` — integer cardinalities (``len``, ``int``, ``np.arange``);
- ``FLOAT`` — an unconstrained float (ratios of logs, products of a
  count and a probability, ...);
- ``NEUTRAL`` — ``±inf``/``nan`` sentinels, which belong to *every*
  domain (``-inf`` is both ``log 0`` and a valid linear lower bound)
  and therefore join as the identity;
- ``UNKNOWN`` — no provenance (parameters, attributes, foreign calls).

Inference deliberately over-approximates in the direction that asks for
a justification comment rather than the direction that hides a bug,
matching the other shared indices (:mod:`asyncflow`).  The
``# domain: <log|linear> <reason>`` annotation (parsed in
:mod:`repro.devtools.suppressions`) pins a statement's domain where
provenance cannot see it — e.g. ``log_binomial``'s ``return 0.0`` arm,
which *is* ``log 1``.
"""

from __future__ import annotations

import ast
import enum
import weakref
from dataclasses import dataclass, field

from .callgraph import CallGraph, FunctionInfo, build_call_graph
from .context import ProgramContext

__all__ = [
    "Domain",
    "NumericIndex",
    "get_numeric_index",
    "join",
]

#: fixpoint cap for the interprocedural summary iteration.  Summaries
#: can only move up a finite lattice, so convergence is guaranteed; the
#: cap bounds pathological call cycles.
_MAX_SUMMARY_PASSES = 5

#: log-bearing call names: calling one of these *produces* a log-domain
#: value.  ``log``/``exp`` are only trusted under a math/numpy receiver
#: (a bare ``logger.log`` must not poison the analysis); the rest are
#: distinctive enough to accept from any receiver.
_LOG_BEARERS = frozenset(
    {
        "lgamma",
        "gammaln",
        "log1p",
        "log2",
        "log10",
        "logaddexp",
        "logsumexp",
        "log1mexp",
        "xlogy",
    }
)
_GUARDED_LOG = frozenset({"log"})
_EXP_NAMES = frozenset({"exp", "expm1"})
_NUMERIC_RECEIVERS = frozenset({"math", "np", "numpy"})

#: names whose value is an integer cardinality.
_COUNT_CALLS = frozenset({"len", "int", "round", "arange", "ord", "range"})

#: array constructors whose elements are probabilities by construction.
_PROB_CONSTRUCTORS = frozenset({"zeros", "ones", "zeros_like", "ones_like"})
#: array constructors of unconstrained floats.
_FLOAT_CONSTRUCTORS = frozenset({"empty", "empty_like", "full_like"})

#: calls transparent to the element domain of their first argument.
_TRANSPARENT_CALLS = frozenset(
    {"asarray", "array", "abs", "fabs", "float", "copy", "ascontiguousarray"}
)


class Domain(enum.Enum):
    """One point of the numeric value-domain lattice."""

    NEUTRAL = "neutral"
    LOG = "log"
    LINEAR_RAW = "linear-raw"
    LINEAR = "linear"
    COUNT = "count"
    FLOAT = "float"
    UNKNOWN = "unknown"

    @property
    def is_linear_prob(self) -> bool:
        return self in (Domain.LINEAR, Domain.LINEAR_RAW)


def join(a: Domain, b: Domain) -> Domain:
    """Least upper bound of two domains.

    ``NEUTRAL`` (±inf/nan sentinels) is the identity; mixing ``LOG``
    with any informative non-log domain yields ``UNKNOWN`` (the mix is
    exactly what P11 flags at the *operation* level — the joined value
    itself no longer has a trustworthy domain).
    """
    if a is b:
        return a
    if a is Domain.NEUTRAL:
        return b
    if b is Domain.NEUTRAL:
        return a
    if Domain.UNKNOWN in (a, b):
        return Domain.UNKNOWN
    if Domain.LOG in (a, b):
        return Domain.UNKNOWN
    if a.is_linear_prob and b.is_linear_prob:
        # raw taints: the joined value may still escape [0, 1].
        return Domain.LINEAR_RAW
    if Domain.FLOAT in (a, b):
        return Domain.FLOAT
    # COUNT with LINEAR/LINEAR_RAW: an int that is sometimes a
    # probability is just a float.
    return Domain.FLOAT


def join_all(domains: list[Domain]) -> Domain:
    result = Domain.NEUTRAL
    for domain in domains:
        result = join(result, domain)
    return result


@dataclass
class NumericIndex:
    """Program-wide numeric dataflow facts, built once per lint run."""

    graph: CallGraph
    #: qualname -> inferred domain of the function's return value
    summaries: dict[str, Domain] = field(default_factory=dict)
    #: qualname -> (local name -> inferred domain)
    envs: dict[str, dict[str, Domain]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def env_of(self, qualname: str) -> dict[str, Domain]:
        return self.envs.get(qualname, {})

    def summary_of(self, qualname: str) -> Domain:
        return self.summaries.get(qualname, Domain.UNKNOWN)

    def evaluator(self, fn: FunctionInfo) -> "Evaluator":
        """A node-level domain evaluator bound to ``fn``'s environment."""
        return Evaluator(self, fn, self.env_of(fn.qualname))


_CACHE: "weakref.WeakKeyDictionary[ProgramContext, NumericIndex]" = (
    weakref.WeakKeyDictionary()
)


def get_numeric_index(program: ProgramContext) -> NumericIndex:
    """The (cached) numeric dataflow index for ``program``."""
    index = _CACHE.get(program)
    if index is None:
        index = _build_index(program)
        _CACHE[program] = index
    return index


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def _build_index(program: ProgramContext) -> NumericIndex:
    graph = build_call_graph(program)
    index = NumericIndex(graph=graph)
    functions = [
        fn
        for fn in graph.functions.values()
        if not fn.module.startswith("<")  # consumers never contribute
    ]
    for _ in range(_MAX_SUMMARY_PASSES):
        changed = False
        for fn in functions:
            env = _build_env(index, fn)
            index.envs[fn.qualname] = env
            summary = _return_summary(index, fn, env)
            if index.summaries.get(fn.qualname) is not summary:
                index.summaries[fn.qualname] = summary
                changed = True
        if not changed:
            break
    return index


def _domain_marker(index: NumericIndex, fn: FunctionInfo) -> object:
    info = index.graph.program.modules.get(fn.module)
    if info is None:
        return None
    return info.ctx.suppressions


def _pinned(index: NumericIndex, fn: FunctionInfo, line: int) -> Domain | None:
    """The ``# domain:`` annotation covering ``line``, if any."""
    sup = _domain_marker(index, fn)
    pinned = sup.domain_at(line) if sup is not None else None
    if pinned == "log":
        return Domain.LOG
    if pinned == "linear":
        return Domain.LINEAR
    return None


def _build_env(index: NumericIndex, fn: FunctionInfo) -> dict[str, Domain]:
    """Flow-insensitive name -> domain map for one function body.

    Every assignment *joins* into the name's domain (no kills), and the
    statement walk runs twice so uses textually before their defining
    assignment still see it — the cheap approximation that matches the
    over-report-rather-than-miss posture of the other indices.
    """
    env: dict[str, Domain] = {}
    evaluator = Evaluator(index, fn, env)
    for _ in range(2):
        for node in _source_order_walk(fn.node):
            _absorb_statement(index, fn, node, env, evaluator)
    return env


def _source_order_walk(node: ast.AST) -> "ast.AST":
    """Depth-first preorder walk — unlike ``ast.walk`` (breadth-first),
    statements are visited in source order, so a self-referential
    rebinding (``logs = np.where(mask, -np.inf, logs)``) sees the
    domain its earlier textual binding established instead of reading
    the name unbound."""
    for child in ast.iter_child_nodes(node):
        yield child
        yield from _source_order_walk(child)


def _absorb_statement(
    index: NumericIndex,
    fn: FunctionInfo,
    node: ast.AST,
    env: dict[str, Domain],
    evaluator: "Evaluator",
) -> None:
    if isinstance(node, ast.Assign):
        pinned = _pinned(index, fn, node.lineno)
        value = pinned or evaluator.domain_of(node.value)
        for target in node.targets:
            _bind_target(target, value, env)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        pinned = _pinned(index, fn, node.lineno)
        value = pinned or evaluator.domain_of(node.value)
        _bind_target(node.target, value, env)
    elif isinstance(node, ast.AugAssign):
        if isinstance(node.target, ast.Name):
            current = env.get(node.target.id, Domain.NEUTRAL)
            value = _binop_domain(
                type(node.op), current, evaluator.domain_of(node.value)
            )
            env[node.target.id] = join(current, value)
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        # Iterating an array/sequence yields its element domain.
        _bind_target(node.target, evaluator.domain_of(node.iter), env)
    elif isinstance(node, ast.NamedExpr) and isinstance(
        node.target, ast.Name
    ):
        env[node.target.id] = join(
            env.get(node.target.id, Domain.NEUTRAL),
            evaluator.domain_of(node.value),
        )


def _bind_target(
    target: ast.AST, value: Domain, env: dict[str, Domain]
) -> None:
    if isinstance(target, ast.Name):
        env[target.id] = join(env.get(target.id, Domain.NEUTRAL), value)
    elif isinstance(target, ast.Subscript) and isinstance(
        target.value, ast.Name
    ):
        # Storing into a slice refines the array's element domain.
        name = target.value.id
        env[name] = join(env.get(name, Domain.NEUTRAL), value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(element, Domain.UNKNOWN, env)


def _return_summary(
    index: NumericIndex, fn: FunctionInfo, env: dict[str, Domain]
) -> Domain:
    evaluator = Evaluator(index, fn, env)
    returned: list[Domain] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            pinned = _pinned(index, fn, node.lineno)
            returned.append(pinned or evaluator.domain_of(node.value))
    if not returned:
        return Domain.UNKNOWN
    return join_all(returned)


# ----------------------------------------------------------------------
# node evaluation
# ----------------------------------------------------------------------
def _binop_domain(op: type, left: Domain, right: Domain) -> Domain:
    """Result domain of ``left <op> right``."""
    if Domain.NEUTRAL in (left, right):
        other = right if left is Domain.NEUTRAL else left
        return other
    if op in (ast.Add, ast.Sub):
        if Domain.LOG in (left, right):
            other = right if left is Domain.LOG else left
            if other is Domain.LOG:
                return Domain.LOG
            if other in (Domain.COUNT, Domain.FLOAT):
                # shifting/scaling a log by a constant keeps it a log
                return Domain.LOG
            return Domain.UNKNOWN
        if left.is_linear_prob and right.is_linear_prob:
            if op is ast.Sub:
                # 1 - p (complement) stays a probability; raw taints.
                if Domain.LINEAR_RAW in (left, right):
                    return Domain.LINEAR_RAW
                return Domain.LINEAR
            return Domain.FLOAT  # p + q may exceed 1
        if left is Domain.COUNT and right is Domain.COUNT:
            return Domain.COUNT
        if Domain.UNKNOWN in (left, right):
            return Domain.UNKNOWN
        return Domain.FLOAT
    if op is ast.Mult:
        if Domain.LOG in (left, right):
            other = right if left is Domain.LOG else left
            if other in (Domain.COUNT, Domain.FLOAT):
                return Domain.LOG  # n * log p is a log of a power
            return Domain.UNKNOWN
        if left.is_linear_prob and right.is_linear_prob:
            if Domain.LINEAR_RAW in (left, right):
                return Domain.LINEAR_RAW
            return Domain.LINEAR  # p * q stays within [0, 1]
        if left is Domain.COUNT and right is Domain.COUNT:
            return Domain.COUNT
        if Domain.UNKNOWN in (left, right):
            return Domain.UNKNOWN
        return Domain.FLOAT
    if op is ast.Div:
        # True division always yields an unconstrained float, whatever
        # the operand domains (a ratio of logs is not a log).
        return Domain.FLOAT
    if op in (ast.FloorDiv, ast.Mod):
        if left is Domain.COUNT and right is Domain.COUNT:
            return Domain.COUNT
        if Domain.UNKNOWN in (left, right):
            return Domain.UNKNOWN
        return Domain.FLOAT
    if op in (ast.Pow, ast.MatMult):
        if Domain.UNKNOWN in (left, right):
            return Domain.UNKNOWN
        return Domain.FLOAT
    return Domain.UNKNOWN


def _receiver_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _is_one(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value in (1, 1.0)


def _is_zero(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


def _is_inf_literal(node: ast.AST) -> bool:
    """``float("inf")``/``float("-inf")``/``float("nan")`` sentinels."""
    if not (isinstance(node, ast.Call) and _call_name(node) == "float"):
        return False
    if len(node.args) != 1:
        return False
    arg = node.args[0]
    return isinstance(arg, ast.Constant) and isinstance(
        arg.value, str
    ) and arg.value.lstrip("+-") in ("inf", "infinity", "nan")


class Evaluator:
    """Domain evaluation of expression nodes within one function."""

    def __init__(
        self,
        index: NumericIndex,
        fn: FunctionInfo,
        env: dict[str, Domain],
    ) -> None:
        self.index = index
        self.fn = fn
        self.env = env
        self._sites = {
            (site.node_line, site.node_col): site
            for site in index.graph.calls_in(fn.qualname)
        }

    # ------------------------------------------------------------------
    def domain_of(self, node: ast.AST) -> Domain:
        if isinstance(node, ast.Constant):
            return self._constant(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, Domain.UNKNOWN)
        if isinstance(node, ast.UnaryOp):
            return self.domain_of(node.operand)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.BinOp):
            return _binop_domain(
                type(node.op),
                self.domain_of(node.left),
                self.domain_of(node.right),
            )
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            return join(
                self.domain_of(node.body), self.domain_of(node.orelse)
            )
        if isinstance(node, ast.Subscript):
            # An element inherits the array's element domain.
            return self.domain_of(node.value)
        if isinstance(node, ast.Compare):
            return Domain.COUNT  # booleans behave as 0/1 counts
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return join_all([self.domain_of(e) for e in node.elts])
        if isinstance(node, ast.ListComp):
            return self.domain_of(node.elt)
        if isinstance(node, ast.GeneratorExp):
            return self.domain_of(node.elt)
        if isinstance(node, ast.Starred):
            return self.domain_of(node.value)
        return Domain.UNKNOWN

    # ------------------------------------------------------------------
    def _constant(self, node: ast.Constant) -> Domain:
        value = node.value
        if isinstance(value, bool):
            return Domain.COUNT
        if isinstance(value, int):
            return Domain.COUNT
        if isinstance(value, float):
            if value != value or value in (
                float("inf"),
                float("-inf"),
            ):
                return Domain.NEUTRAL
            if 0.0 <= value <= 1.0:
                return Domain.LINEAR
            return Domain.FLOAT
        return Domain.UNKNOWN

    def _attribute(self, node: ast.Attribute) -> Domain:
        if node.attr in ("inf", "nan", "e", "pi"):
            receiver = _receiver_name(node)
            if receiver in _NUMERIC_RECEIVERS:
                if node.attr in ("inf", "nan"):
                    return Domain.NEUTRAL
                return Domain.FLOAT
        if node.attr in ("size", "shape", "ndim"):
            return Domain.COUNT
        return Domain.UNKNOWN

    # ------------------------------------------------------------------
    def _call(self, node: ast.Call) -> Domain:
        name = _call_name(node)
        receiver = _receiver_name(node.func)
        if name is None:
            return Domain.UNKNOWN
        if _is_inf_literal(node):
            return Domain.NEUTRAL
        if name in _LOG_BEARERS:
            return Domain.LOG
        if name in _GUARDED_LOG and (
            receiver in _NUMERIC_RECEIVERS
            or isinstance(node.func, ast.Name)
        ):
            return Domain.LOG
        if name in _EXP_NAMES:
            inner = self.domain_of(node.args[0]) if node.args else (
                Domain.UNKNOWN
            )
            if inner in (Domain.LOG, Domain.NEUTRAL):
                return Domain.LINEAR_RAW
            return Domain.FLOAT
        if name == "clip" and len(node.args) >= 3:
            if _is_zero(node.args[1]) and _is_one(node.args[2]):
                return Domain.LINEAR
            return Domain.FLOAT
        if name == "min" and len(node.args) == 2:
            for bound, other in (
                (node.args[0], node.args[1]),
                (node.args[1], node.args[0]),
            ):
                if _is_one(bound):
                    inner = self.domain_of(other)
                    if inner.is_linear_prob:
                        # exp() output is >= 0, so min(1.0, raw) is a
                        # fully validated probability.
                        return Domain.LINEAR
            return Domain.UNKNOWN
        if name == "max" and len(node.args) == 2:
            for bound, other in (
                (node.args[0], node.args[1]),
                (node.args[1], node.args[0]),
            ):
                if _is_zero(bound):
                    inner = self.domain_of(other)
                    if inner is Domain.LINEAR:
                        return Domain.LINEAR
            return Domain.UNKNOWN
        if name in _COUNT_CALLS:
            return Domain.COUNT
        if name in _PROB_CONSTRUCTORS:
            return Domain.LINEAR
        if name in _FLOAT_CONSTRUCTORS:
            return Domain.FLOAT
        if name == "full" and len(node.args) >= 2:
            return self.domain_of(node.args[1])
        if name == "where" and len(node.args) == 3:
            return join(
                self.domain_of(node.args[1]), self.domain_of(node.args[2])
            )
        if name in ("sum", "prod", "dot", "cumsum"):
            target = node.args[0] if node.args else (
                node.func.value
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if target is not None:
                inner = self.domain_of(target)
                if inner is Domain.LOG:
                    return Domain.LOG  # a sum of logs is a product's log
                if inner is Domain.COUNT:
                    return Domain.COUNT
            return Domain.FLOAT
        if name in _TRANSPARENT_CALLS:
            target: ast.AST | None
            if node.args:
                target = node.args[0]
            elif isinstance(node.func, ast.Attribute):
                target = node.func.value
            else:
                target = None
            if target is not None:
                inner = self.domain_of(target)
                if name in ("float",) and inner is Domain.COUNT:
                    return Domain.FLOAT
                return inner
            return Domain.UNKNOWN
        # interprocedural: resolved project call -> its return summary
        site = self._sites.get((node.lineno, node.col_offset))
        if site is not None and site.targets:
            return join_all(
                [self.index.summary_of(t) for t in site.targets]
            )
        return Domain.UNKNOWN
