"""Rules P6/P7: event-loop discipline for the live service.

**P6** — the live defense loop (PR 4) shares one asyncio event loop
between the coordinator's detection sweeps, every replica's request
handlers, and the control channel.  Anything that blocks that loop —
``time.sleep``, synchronous socket/file I/O, ``subprocess``, or a
CPU-heavy ``repro.core`` planner/estimator — freezes *all* of them at
once: saturation windows go stale, detection lags, and the shuffle loop
the paper's convergence argument depends on stops keeping up with the
attack.  The pass computes a "can block" summary for every synchronous
function (direct offense, or a call chain reaching one) and flags
non-awaited calls inside ``async def`` bodies in the service layer that
reach a blocking summary.  Genuinely cheap calls are accepted with an
``# event-loop-safe: <reason>`` marker — the reason is mandatory.

**P7** — a coroutine call whose result is discarded never runs
(``RuntimeWarning: coroutine was never awaited`` at garbage-collection
time, long after the bug site), and a task spawned with
``asyncio.create_task`` whose handle is neither retained nor given a
done-callback swallows its exceptions silently — the detection loop
can die mid-scenario with no trace.  The pass flags both shapes at the
statement that discards the result.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .callgraph import CallGraph, CallSite, build_call_graph
from .context import ModuleInfo, ProgramContext

__all__ = ["blocking_summaries"]

#: layers whose async functions the blocking pass polices (the event
#: loop lives in the service layer; sim/runtime are synchronous).
_ASYNC_LAYERS = frozenset({"service"})

#: known CPU-heavy ``repro.core`` entry points: whole-grid
#: precomputation, the DP/greedy planners, and the estimators.  Calling
#: one on the event loop is legitimate only with a written
#: ``# event-loop-safe:`` justification (e.g. bounded inputs).
_CPU_HEAVY_CORE = frozenset(
    {
        "precompute",
        "estimate_bots_mle",
        "estimate_bots_moment",
        "estimate_bots_weighted",
        "dp_plan",
        "dp_fast_plan",
        "greedy_plan",
        "even_plan",
        "shuffle_trajectory",
    }
)

#: ``socket`` module calls that perform blocking network I/O.
_SOCKET_BLOCKING = frozenset(
    {"socket", "create_connection", "getaddrinfo", "gethostbyname"}
)

#: attribute calls that read/write files regardless of receiver.
_FILE_IO_ATTRS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: generic container/protocol method names whose bare-name call-graph
#: fallback is overwhelmingly wrong (``window.get(...)`` is a dict, not
#: ``ResultCache.get``).  Blocking propagation ignores non-``self``
#: attribute calls with these names; direct offenses (distinctly named,
#: e.g. ``read_text``) are still checked on every call.
_GENERIC_ATTRS = frozenset(
    {
        "add",
        "append",
        "cancel",
        "clear",
        "close",
        "copy",
        "count",
        "counts",
        "discard",
        "done",
        "extend",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popleft",
        "remove",
        "result",
        "set",
        "sort",
        "split",
        "strip",
        "sum",
        "update",
        "values",
    }
)


# ----------------------------------------------------------------------
# direct-offense detection
# ----------------------------------------------------------------------
def _module_maps(
    info: ModuleInfo,
) -> tuple[dict[str, str], dict[str, str]]:
    """(bare-name -> offense, local alias -> module) for one module."""
    bare: dict[str, str] = {}
    aliases: dict[str, str] = {}
    for record in info.imports:
        if record.names:
            if record.target == "time":
                for local, original in record.bindings():
                    if original == "sleep":
                        bare[local] = "time.sleep()"
        elif record.module_alias is not None:
            aliases[record.module_alias] = record.target
    return bare, aliases


def _direct_offense(
    call: ast.Call, bare: dict[str, str], aliases: dict[str, str]
) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in bare:
            return f"blocking `{bare[func.id]}`"
        if func.id == "open":
            return "synchronous file I/O (`open()`)"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _FILE_IO_ATTRS:
        return f"synchronous file I/O (`.{func.attr}()`)"
    if isinstance(func.value, ast.Name):
        module = aliases.get(func.value.id, func.value.id)
        if module == "time" and func.attr == "sleep":
            return "blocking `time.sleep()`"
        if module == "subprocess":
            return f"blocking `subprocess.{func.attr}()`"
        if module == "socket" and func.attr in _SOCKET_BLOCKING:
            return f"blocking `socket.{func.attr}()`"
        if module == "os" and func.attr == "system":
            return "blocking `os.system()`"
    return None


def _heavy_core_target(site: CallSite) -> str | None:
    for target in site.targets:
        parts = target.split(".")
        if (
            len(parts) >= 2
            and parts[1] == "core"
            and parts[-1] in _CPU_HEAVY_CORE
        ):
            return target
    return None


def _confident_sites(
    graph: CallGraph, qualname: str
) -> Iterator[CallSite]:
    """Call sites whose resolved targets are worth propagating through.

    Non-``self`` attribute calls with generic container/protocol names
    resolve by bare-name fallback to unrelated project methods; those
    edges are dropped for blocking propagation.
    """
    for site in graph.calls_in(qualname):
        func = site.call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _GENERIC_ATTRS
            and not (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
            )
        ):
            continue
        yield site


def blocking_summaries(
    graph: CallGraph, program: ProgramContext
) -> dict[str, str]:
    """qualname -> reason, for every *sync* function that can block.

    Seeded with direct offenses (sleep/subprocess/file I/O/heavy core
    calls), then propagated caller-ward through synchronous callers
    only: an async callee runs on its own turn of the loop and is
    checked at its own body.  Propagation follows only
    :func:`_confident_sites` edges.
    """
    maps = {
        name: _module_maps(info)
        for name, info in program.modules.items()
    }
    blocking: dict[str, str] = {}
    rev: dict[str, set[str]] = {}
    for qualname, fn in graph.functions.items():
        if isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        bare, aliases = maps.get(fn.module, ({}, {}))
        for site in graph.calls_in(qualname):
            desc = _direct_offense(site.call, bare, aliases)
            if desc is None:
                heavy = _heavy_core_target(site)
                if heavy is not None:
                    desc = f"CPU-heavy core call `{_short(heavy)}`"
            if desc is not None:
                blocking.setdefault(qualname, desc)
                break
        for site in _confident_sites(graph, qualname):
            for target in site.targets:
                rev.setdefault(target, set()).add(qualname)
    worklist = list(blocking)
    while worklist:
        current = worklist.pop()
        for caller in sorted(rev.get(current, ())):
            if caller in blocking:
                continue
            blocking[caller] = (
                f"{blocking[current]} via `{_short(current)}`"
            )
            worklist.append(caller)
    return blocking


@project_rule(
    "P6",
    "async-blocking",
    "The service shares one event loop between detection sweeps, "
    "request handlers and the control channel; a blocking call "
    "(time.sleep, sync I/O, subprocess, CPU-heavy core planner or "
    "estimator) inside an async def freezes all of them and stalls the "
    "shuffle loop the paper's convergence depends on — await an async "
    "equivalent, run_in_executor it, or justify with "
    "`# event-loop-safe: <reason>`.",
)
def check_async_blocking(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    graph = build_call_graph(program)
    blocking = blocking_summaries(graph, program)
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if not isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        if _layer(fn.module) not in _ASYNC_LAYERS:
            continue
        info = program.modules.get(fn.module)
        if info is None or info.ctx.is_test_file:
            continue
        bare, aliases = _module_maps(info)
        awaited = {
            id(node.value)
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Await)
            and isinstance(node.value, ast.Call)
        }
        confident = {id(site) for site in _confident_sites(graph, qualname)}
        for site in graph.calls_in(qualname):
            call = site.call
            if id(call) in awaited:
                continue
            if info.ctx.suppressions.has_loop_safe(call.lineno):
                continue
            desc = _direct_offense(call, bare, aliases)
            if desc is None:
                heavy = _heavy_core_target(site)
                if heavy is not None:
                    desc = f"CPU-heavy core call `{_short(heavy)}`"
            if desc is None and id(site) in confident:
                desc = _blocking_callee(graph, site, blocking)
            if desc is not None:
                yield (
                    info.ctx.path,
                    call.lineno,
                    call.col_offset,
                    f"{desc} on the event loop in async "
                    f"`{_short(qualname)}`: stalls every task sharing "
                    "the loop; await an async equivalent, offload via "
                    "run_in_executor, or add "
                    "`# event-loop-safe: <reason>`",
                )


def _blocking_callee(
    graph: CallGraph, site: CallSite, blocking: dict[str, str]
) -> str | None:
    for target in site.targets:
        fn = graph.functions.get(target)
        if fn is None or isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        if target in blocking:
            return (
                f"call into `{_short(target)}`, which reaches "
                f"{blocking[target]},"
            )
    return None


# ----------------------------------------------------------------------
# P7: orphan coroutines and fire-and-forget tasks
# ----------------------------------------------------------------------
_SPAWN_NAMES = frozenset({"create_task", "ensure_future"})


def _is_spawn_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in _SPAWN_NAMES
    if isinstance(func, ast.Name):
        return func.id in _SPAWN_NAMES
    return False


@project_rule(
    "P7",
    "orphan-coroutine",
    "A coroutine call whose result is discarded never executes (the "
    "'never awaited' warning fires at GC time, far from the bug), and "
    "a create_task() handle that is neither retained nor given a "
    "done-callback swallows the task's exceptions silently — a crashed "
    "detection loop looks like a healthy quiet one.  Await the call, "
    "keep the handle, or attach an exception-reporting done-callback.",
)
def check_orphan_coroutines(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    graph = build_call_graph(program)
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        info = program.modules.get(fn.module)
        if info is None or info.ctx.is_test_file:
            continue
        sites = {
            (site.node_line, site.node_col): site
            for site in graph.calls_in(qualname)
        }
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Expr):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            if _is_spawn_call(value):
                yield (
                    info.ctx.path,
                    value.lineno,
                    value.col_offset,
                    f"fire-and-forget task in `{_short(qualname)}`: the "
                    "create_task() handle is discarded, so the task's "
                    "exceptions vanish silently; retain the handle or "
                    "chain .add_done_callback(...) that reports them",
                )
                continue
            # create_task(...).add_done_callback(cb) keeps a reporter.
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "add_done_callback"
            ):
                continue
            site = sites.get((value.lineno, value.col_offset))
            if site is None or not site.targets:
                continue
            callees = [
                graph.functions.get(target) for target in site.targets
            ]
            if all(
                callee is not None
                and isinstance(callee.node, ast.AsyncFunctionDef)
                for callee in callees
            ):
                yield (
                    info.ctx.path,
                    value.lineno,
                    value.col_offset,
                    f"coroutine `{_short(site.targets[0])}` called in "
                    f"`{_short(qualname)}` but never awaited: the "
                    "coroutine object is discarded and its body never "
                    "runs — await it or schedule it with create_task()",
                )


def _layer(module: str) -> str | None:
    parts = module.split(".")
    return parts[1] if len(parts) >= 2 else None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname
