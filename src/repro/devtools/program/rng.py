"""Rule P2: interprocedural RNG provenance.

The per-file rule R1 catches a literal ``default_rng()`` with no
arguments, but the dangerous leaks are the ones R1 cannot see from one
file:

- a helper ``def make_rng(seed=None): return default_rng(seed)`` called
  without a seed — every call site looks innocent, yet
  ``default_rng(None)`` is entropy-seeded;
- the same omission laundered through several layers of calls;
- a dataclass field ``rng: Generator = field(default_factory=
  default_rng)`` — a bare function *reference*, no call for R1 to flag,
  constructing an entropy-seeded generator at every instantiation.

This pass tracks ``numpy.random.Generator`` construction sites through
the approximate call graph: each function gets a summary (does it
unconditionally construct an unseeded generator? does it *forward* a
seed parameter into a construction?), summaries propagate caller-ward to
a fixpoint, and any unseeded construction path whose entry sits in a
reproducibility-critical layer (``sim``/``cloudsim``, plus ``service``
— the live defense promises seed-for-seed reproducible shuffle
sequences even though wall-clock time drives its scheduling) is
reported with the call chain that reaches the construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .callgraph import CallGraph, FunctionInfo, build_call_graph
from .context import ModuleInfo, ProgramContext

__all__ = ["analyze_rng", "RngFinding"]

#: layers whose stochastic paths must stay bit-for-bit reproducible.
#: ``service`` is stochastic-deterministic: its *timing* is wall-clock
#: but its *decisions* (shuffle permutations, client jitter) must come
#: from seeded generators.  ``trust`` joins for the same reason: its
#: per-client heal-jitter draws derive from the configured seed.
_REPORT_LAYERS = frozenset({"sim", "cloudsim", "service", "trust"})
_NUMPY_HEADS = frozenset({"np", "numpy"})


@dataclass(frozen=True)
class RngFinding:
    """One unseeded-construction path."""

    path: Path
    line: int
    col: int
    message: str


@dataclass
class _Summary:
    """Per-function RNG behaviour."""

    #: (line, col, chain) of unconditional unseeded constructions that
    #: execute whenever the function runs.
    unconditional: list[tuple[int, int, str]] = field(default_factory=list)
    #: param name -> chain: passing None (or omitting, when the default
    #: is None) for this param yields an unseeded construction.
    forwards: dict[str, str] = field(default_factory=dict)


def _is_default_rng(
    node: ast.AST, rng_aliases: frozenset[str]
) -> bool:
    """Is this expression a reference to ``numpy.random.default_rng``?"""
    if isinstance(node, ast.Name):
        return node.id in rng_aliases
    if isinstance(node, ast.Attribute) and node.attr == "default_rng":
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in _NUMPY_HEADS
        ):
            return True
    return False


def _rng_aliases(info: ModuleInfo) -> frozenset[str]:
    """Local names bound to ``default_rng`` via from-imports."""
    aliases = set()
    for record in info.imports:
        if record.target == "numpy.random":
            for local, original in record.bindings():
                if original == "default_rng":
                    aliases.add(local)
    return frozenset(aliases)


def analyze_rng(
    program: ProgramContext, graph: CallGraph | None = None
) -> list[RngFinding]:
    """Run the provenance analysis; see the module docstring."""
    graph = graph if graph is not None else build_call_graph(program)
    aliases_by_module = {
        info.name: _rng_aliases(info) for info in program.project_modules()
    }

    # Pass 1 — direct summaries from each function body.
    summaries: dict[str, _Summary] = {}
    for qualname, fn in graph.functions.items():
        summaries[qualname] = _direct_summary(
            fn, aliases_by_module.get(fn.module, frozenset())
        )

    # Pass 2 — propagate through call sites to a fixpoint.  A call that
    # reaches an unseeded construction makes the *caller* summary grow,
    # so reprocess callers until nothing changes.
    changed = True
    guard = 0
    while changed and guard <= len(graph.functions) + 1:
        changed = False
        guard += 1
        for qualname, fn in graph.functions.items():
            summary = summaries[qualname]
            for site in graph.calls_in(qualname):
                for target in site.targets:
                    callee_fn = graph.function(target)
                    callee = summaries.get(target)
                    if callee is None or callee_fn is None:
                        continue
                    if callee.unconditional:
                        chain = callee.unconditional[0][2]
                        if _add_unconditional(
                            summary,
                            site.node_line,
                            site.node_col,
                            f"{_short(target)} -> {chain}",
                        ):
                            changed = True
                    for param, chain in callee.forwards.items():
                        outcome = _argument_for(
                            callee_fn, site.call, param
                        )
                        if outcome == "unseeded":
                            if _add_unconditional(
                                summary,
                                site.node_line,
                                site.node_col,
                                f"{_short(target)}({param}=None) -> "
                                f"{chain}",
                            ):
                                changed = True
                        elif isinstance(outcome, str) and outcome.startswith(
                            "forward:"
                        ):
                            own_param = outcome.split(":", 1)[1]
                            new_chain = (
                                f"{_short(target)}({param}=...) -> {chain}"
                            )
                            if own_param not in summary.forwards:
                                summary.forwards[own_param] = new_chain
                                changed = True

    # Pass 3 — report entries in the simulator layers.
    findings: list[RngFinding] = []
    for qualname, fn in sorted(graph.functions.items()):
        if _layer(fn.module) not in _REPORT_LAYERS:
            continue
        info = program.modules.get(fn.module)
        if info is None or info.ctx.is_test_file:
            continue
        for line, col, chain in summaries[qualname].unconditional:
            if chain == "default_rng()":
                continue  # the literal no-arg call is R1's report
            findings.append(
                RngFinding(
                    path=info.ctx.path,
                    line=line,
                    col=col,
                    message=(
                        "unseeded numpy Generator reachable from "
                        f"`{_short(qualname)}` (path: {chain}); thread a "
                        "seed or spawn from the session generator"
                    ),
                )
            )
    findings.extend(_field_factory_findings(program, aliases_by_module))
    return sorted(
        findings, key=lambda f: (str(f.path), f.line, f.col, f.message)
    )


def _direct_summary(
    fn: FunctionInfo, rng_aliases: frozenset[str]
) -> _Summary:
    summary = _Summary()
    params = set(fn.positional_params()) | {
        a.arg for a in fn.node.args.kwonlyargs
    }
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        if not _is_default_rng(node.func, rng_aliases):
            continue
        seed = _first_argument(node)
        if seed is _OMITTED:
            # Literal `default_rng()` — R1's territory; P2 still needs
            # the summary so *callers* of this function get flagged.
            summary.unconditional.append(
                (node.lineno, node.col_offset, "default_rng()")
            )
        elif isinstance(seed, ast.Constant) and seed.value is None:
            summary.unconditional.append(
                (node.lineno, node.col_offset, "default_rng(None)")
            )
        elif isinstance(seed, ast.Name) and seed.id in params:
            summary.forwards.setdefault(
                seed.id, f"default_rng({seed.id})"
            )
        # anything else (int literal, SeedSequence, attribute, spawn
        # child) counts as explicit provenance.
    return summary


class _Omitted:
    pass


_OMITTED = _Omitted()


def _first_argument(call: ast.Call) -> ast.AST | _Omitted:
    if call.args:
        first = call.args[0]
        return _OMITTED if isinstance(first, ast.Starred) else first
    for kw in call.keywords:
        if kw.arg == "seed":
            return kw.value
    return _OMITTED


def _argument_for(
    callee: FunctionInfo, call: ast.Call, param: str
) -> str | None:
    """How does ``call`` bind ``param`` of ``callee``?

    Returns ``"unseeded"`` when the binding is None (explicitly, or by
    omission with a None default), ``"forward:<name>"`` when the caller
    passes one of *its own* bare names (possibly its own parameter), and
    ``None`` when the binding carries explicit provenance.
    """
    if any(isinstance(a, ast.Starred) for a in call.args) or any(
        kw.arg is None for kw in call.keywords
    ):
        return None  # *args/**kwargs: give up, assume provenance
    value: ast.AST | None = None
    positional = callee.positional_params()
    if param in positional:
        index = positional.index(param)
        if index < len(call.args):
            value = call.args[index]
    if value is None:
        for kw in call.keywords:
            if kw.arg == param:
                value = kw.value
                break
    if value is None:
        default = callee.param_default(param)
        if default is False or default is None:
            return None  # no such param / required param: out of scope
        if isinstance(default, ast.Constant) and default.value is None:
            return "unseeded"
        return None
    if isinstance(value, ast.Constant) and value.value is None:
        return "unseeded"
    if isinstance(value, ast.Name):
        return f"forward:{value.id}"
    return None


def _add_unconditional(
    summary: _Summary, line: int, col: int, chain: str
) -> bool:
    entry = (line, col, chain)
    for existing in summary.unconditional:
        if existing[0] == line and existing[1] == col:
            return False  # one report per site; keep the first chain
    summary.unconditional.append(entry)
    return True


def _layer(module: str) -> str | None:
    parts = module.split(".")
    return parts[1] if len(parts) >= 2 else None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


def _field_factory_findings(
    program: ProgramContext,
    aliases_by_module: dict[str, frozenset[str]],
) -> Iterator[RngFinding]:
    """Bare ``default_rng`` references as dataclass default factories."""
    for info in program.project_modules():
        if info.ctx.is_test_file or _layer(info.name) == "experiments":
            continue
        aliases = aliases_by_module.get(info.name, frozenset())
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "default_factory":
                    continue
                if isinstance(kw.value, ast.Call):
                    continue  # a call is R1's problem, not a reference
                if _is_default_rng(kw.value, aliases):
                    yield RngFinding(
                        path=info.ctx.path,
                        line=kw.value.lineno,
                        col=kw.value.col_offset,
                        message=(
                            "default_factory=default_rng constructs an "
                            "entropy-seeded Generator at every "
                            "instantiation; default to None and seed "
                            "explicitly in __post_init__"
                        ),
                    )


@project_rule(
    "P2",
    "rng-provenance",
    "Every numpy Generator in sim/cloudsim must descend from an "
    "explicitly seeded construction (paper Figures 3-12 are Monte-Carlo "
    "estimates); a seed parameter that defaults to None and is omitted "
    "somewhere up the call chain silently reintroduces entropy seeding "
    "that per-file linting cannot see.",
)
def check_rng_provenance(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    for finding in analyze_rng(program):
        yield finding.path, finding.line, finding.col, finding.message
