"""Rule P10: per-request handler paths stay O(1) and allocation-free.

The REQ/OK hot path is the service's only per-packet code: every
request a replica serves walks it, and the PR 5 observability work
already established the discipline — metric handles are bound once at
construction (``self._count = registry.counter(...).labels_handle()``)
and the request path touches only pre-bound handles and O(1) lookups.
A get-or-create registry lookup per request re-pays dict hashing and
label canonicalization on every packet, and an O(N) scan over a
binding/whitelist container turns each request into work proportional
to fleet size — precisely the cost curve that breaks the ROADMAP's
100×–1000× scaling item.

Scope is the forward closure of the **server-handler task roots** (the
per-connection callbacks registered with ``asyncio.start_server``),
minus reporting surfaces (``snapshot``/``to_dict``, which run on the
operator's cadence, not per request).  Inside that closure the pass
flags registry get-or-create calls and O(N) iteration/aggregation over
container attributes.  Taking an O(N) *copy* (``list(self.x)``) to
return is fine — it is the per-request *scan* that compounds.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .asyncflow import container_attr_kinds, find_task_roots, reachable_from
from .callgraph import build_call_graph
from .context import ProgramContext

__all__ = []

#: layers whose handler closures the pass polices.
_HOT_LAYERS = frozenset({"service"})

#: get-or-create registry factory methods (PR 5): must not run per
#: request — bind the handle once in the constructor instead.
_REGISTRY_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: container views whose iteration is as O(N) as the container itself.
_VIEW_METHODS = frozenset({"values", "items", "keys"})

#: O(N) aggregators over a container argument.
_AGGREGATORS = frozenset({"sorted", "min", "max", "sum", "any", "all"})

#: functions excluded from the closure: operator-cadence reporting, not
#: per-request work (documented exemption).
_REPORTING_NAMES = frozenset({"snapshot", "to_dict"})

#: constructors run once per object, not once per request — binding a
#: metric handle there is exactly the discipline this rule demands.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def _receiver_chain(node: ast.AST) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts


def _registry_factory_call(call: ast.Call) -> str | None:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in _REGISTRY_FACTORIES:
        return None
    chain = _receiver_chain(func.value)
    if any("registry" in part.lower() for part in chain):
        return func.attr
    return None


def _scanned_attr(node: ast.AST, kinds: dict[str, str]) -> str | None:
    """The container attribute ``node`` iterates, if any.

    Matches ``self.x`` directly and ``self.x.values()/.items()/.keys()``
    views; plain ``list(self.x)`` copies are deliberately not matched.
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _VIEW_METHODS:
            node = node.func.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in kinds
    ):
        return node.attr
    return None


def _scan_sites(
    fn_node: ast.AST, kinds: dict[str, str]
) -> Iterator[tuple[ast.AST, str, str]]:
    """(node, attr, how) for each O(N) scan in one function body."""
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            attr = _scanned_attr(node.iter, kinds)
            if attr is not None:
                yield node.iter, attr, "a for-loop over"
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in node.generators:
                attr = _scanned_attr(comp.iter, kinds)
                if attr is not None:
                    yield comp.iter, attr, "a comprehension over"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _AGGREGATORS and node.args:
                attr = _scanned_attr(node.args[0], kinds)
                if attr is not None:
                    yield (
                        node,
                        attr,
                        f"`{node.func.id}()` over",
                    )


@project_rule(
    "P10",
    "hot-path-discipline",
    "Per-request handler code runs once per packet: a get-or-create "
    "metric lookup re-pays registry hashing every request (bind the "
    "handle once at construction, per PR 5), and an O(N) scan over a "
    "binding/whitelist container makes request cost grow with fleet "
    "size — keep the REQ/OK path to pre-bound handles and O(1) "
    "lookups.",
)
def check_hot_path(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    graph = build_call_graph(program)
    handler_roots = {
        root.qualname
        for root in find_task_roots(graph)
        if root.kind == "server-handler"
    }
    if not handler_roots:
        return
    closure = reachable_from(
        graph,
        handler_roots,
        skip_names=_REPORTING_NAMES | _CONSTRUCTORS,
    )
    kinds_by_module: dict[str, dict[str, str]] = {}
    for qualname in sorted(closure):
        fn = graph.functions.get(qualname)
        if fn is None or _layer(fn.module) not in _HOT_LAYERS:
            continue
        if fn.name in _REPORTING_NAMES or fn.name in _CONSTRUCTORS:
            continue
        info = program.modules.get(fn.module)
        if info is None or info.ctx.is_test_file or info.is_consumer:
            continue
        if fn.module not in kinds_by_module:
            kinds_by_module[fn.module] = container_attr_kinds(
                info.ctx.tree
            )
        kinds = kinds_by_module[fn.module]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            factory = _registry_factory_call(node)
            if factory is not None:
                yield (
                    info.ctx.path,
                    node.lineno,
                    node.col_offset,
                    f"get-or-create `registry.{factory}(...)` in "
                    f"`{_short(qualname)}`, which is on the per-request "
                    "handler path: bind the handle once in the "
                    "constructor and use the pre-bound attribute here",
                )
        for site, attr, how in _scan_sites(fn.node, kinds):
            yield (
                info.ctx.path,
                site.lineno,
                site.col_offset,
                f"{how} container `self.{attr}` in "
                f"`{_short(qualname)}`, which is on the per-request "
                "handler path: request cost grows with fleet size — "
                "maintain an O(1) index updated at mutation time "
                "instead of scanning per request",
            )


def _layer(module: str) -> str | None:
    parts = module.split(".")
    return parts[1] if len(parts) >= 2 else None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname
