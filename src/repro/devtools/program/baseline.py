"""Baseline ("ratchet") support for reprolint.

A committed baseline file lists violations that predate a rule: CI
fails on anything *new* while the debt is burned down explicitly.  The
mechanism is deliberately strict in both directions —

- a violation not in the baseline **fails** the run (the ratchet never
  loosens);
- a baseline entry that no longer fires is **stale** and also fails the
  run, forcing ``--write-baseline`` so the committed debt record always
  matches reality (the ratchet audibly tightens).

Entries are fingerprinted by ``(rule, path, message)`` — deliberately
*not* the line number, so unrelated edits that shift code do not churn
the file.  Identical violations on several lines of one file collapse
into one entry with a count.

Paths are canonicalised relative to the baseline file's own directory
(the repo root for the committed ratchets), so a run over an absolute
target (``lint_project([REPO/"src"/"repro"])``) and a run over a
relative one (``repro-lint src/repro``) fingerprint identically and
the committed file stays machine-portable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from ..violations import Violation

__all__ = [
    "Baseline",
    "BaselineComparison",
    "load_baseline",
    "write_baseline",
]

_VERSION = 1


def _canonical(path: str, anchor: Path | None) -> str:
    """Anchor-relative POSIX form of ``path`` when it lies under the
    anchor; its resolved absolute form otherwise."""
    if anchor is None:
        return PurePosixPath(path).as_posix()
    resolved = Path(path).resolve()
    try:
        return resolved.relative_to(anchor).as_posix()
    except ValueError:
        return resolved.as_posix()


def _fingerprint(
    violation: Violation, anchor: Path | None
) -> tuple[str, str, str]:
    return (
        violation.rule_id,
        _canonical(violation.path, anchor),
        violation.message,
    )


@dataclass
class Baseline:
    """The committed debt record: fingerprint -> allowed count."""

    entries: dict[tuple[str, str, str], int] = field(default_factory=dict)
    #: directory of the baseline file — paths canonicalise against it
    anchor: Path | None = None

    @property
    def total(self) -> int:
        return sum(self.entries.values())


@dataclass
class BaselineComparison:
    """Outcome of holding a report against the baseline."""

    new: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    stale: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale


def load_baseline(path: Path | str) -> Baseline:
    path = Path(path)
    anchor = path.resolve().parent
    if not path.exists():
        return Baseline(anchor=anchor)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version in {path}: "
            f"{payload.get('version')!r}"
        )
    baseline = Baseline(anchor=anchor)
    for entry in payload.get("entries", []):
        # Stored paths are anchor-relative already; an absolute one
        # (hand-edited or legacy) is re-anchored on the way in.
        entry_path = entry["path"]
        if Path(entry_path).is_absolute():
            entry_path = _canonical(entry_path, anchor)
        else:
            entry_path = PurePosixPath(entry_path).as_posix()
        key = (entry["rule"], entry_path, entry["message"])
        baseline.entries[key] = int(entry.get("count", 1))
    return baseline


def write_baseline(path: Path | str, violations: list[Violation]) -> None:
    """Serialize ``violations`` as the new committed baseline."""
    anchor = Path(path).resolve().parent
    counts: dict[tuple[str, str, str], int] = {}
    for violation in violations:
        key = _fingerprint(violation, anchor)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": _VERSION,
        "_comment": (
            "reprolint ratchet: pre-existing violations being burned "
            "down. Never add entries by hand; run "
            "`repro-lint --project --write-baseline` and justify the "
            "change in the PR."
        ),
        "entries": [
            {"rule": rule, "path": file_path, "message": message,
             "count": count}
            for (rule, file_path, message), count in sorted(counts.items())
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def compare(
    baseline: Baseline, violations: list[Violation]
) -> BaselineComparison:
    """Split ``violations`` into new vs. baselined, and find stale debt."""
    remaining = dict(baseline.entries)
    comparison = BaselineComparison()
    for violation in sorted(violations):
        key = _fingerprint(violation, baseline.anchor)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            comparison.baselined.append(violation)
        else:
            comparison.new.append(violation)
    for (rule, file_path, message), count in sorted(remaining.items()):
        if count > 0:
            comparison.stale.append(
                {
                    "rule": rule,
                    "path": file_path,
                    "message": message,
                    "count": count,
                }
            )
    return comparison
