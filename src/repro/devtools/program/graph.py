"""Import-graph builder, layering contract (rule P1), and exporters.

The contract is the architecture in one table: ``obs`` is the shared
observability substrate and sits below everything — stdlib only, not
even numpy, so any layer may instrument itself without new coupling;
``core`` is the paper's math and may depend on nothing but the numeric
stack (plus ``obs`` and the ``trust`` leaf, whose log-prior feeds the
estimators); ``detect`` and ``trust`` are embeddable leaves on a
stdlib+numpy+obs budget; ``sim`` and ``analysis`` build on ``core``;
``cloudsim`` (the DES) may use ``core`` and ``sim``; ``runtime``
(parallel grid execution) orchestrates ``core``, ``sim``, and
``cloudsim`` but is never imported by them — the sim layer reaches it
only through the :mod:`repro.sim.backend` registry; ``service`` (the
live socket-level defense) builds on ``core`` for planning/estimation,
``sim`` for the shared QoS schema, and ``analysis`` for convergence
oracles, but never on the simulators — live and simulated runs must
stay independently runnable; ``experiments`` is the CLI surface and may
use anything; ``devtools`` analyzes the tree and must import none of it
(so linting can never execute library side effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .context import ProgramContext

__all__ = [
    "LAYER_CONTRACT",
    "CORE_EXTERNAL_ALLOWED",
    "DETECT_EXTERNAL_ALLOWED",
    "OBS_EXTERNAL_ALLOWED",
    "TRUST_EXTERNAL_ALLOWED",
    "ImportEdge",
    "import_edges",
    "render_dot",
    "render_graph_json",
]

#: layer -> other layers it may import from (same layer always allowed;
#: top-level modules such as ``repro/__init__.py`` are exempt).
LAYER_CONTRACT: dict[str, frozenset[str]] = {
    "obs": frozenset(),
    "detect": frozenset({"obs"}),
    "trust": frozenset({"obs"}),
    "core": frozenset({"obs", "trust"}),
    "sim": frozenset({"core", "obs"}),
    "analysis": frozenset({"core", "obs"}),
    "cloudsim": frozenset({"core", "sim", "detect", "trust", "obs"}),
    "runtime": frozenset({"core", "sim", "cloudsim", "obs"}),
    "service": frozenset(
        {"core", "sim", "analysis", "detect", "trust", "obs"}
    ),
    "experiments": frozenset(
        {"core", "sim", "analysis", "cloudsim", "runtime", "service",
         "devtools", "detect", "trust", "obs"}
    ),
    "devtools": frozenset(),
}

#: the only non-stdlib packages ``core`` may touch: the paper's math is
#: numpy + stdlib ``math``, nothing heavier.
CORE_EXTERNAL_ALLOWED = frozenset({"numpy"})

#: ``detect`` (streaming sketches) is a leaf like core: stdlib + numpy
#: + obs, so both the live service and the simulators can embed it.
DETECT_EXTERNAL_ALLOWED = frozenset({"numpy"})

#: ``trust`` (per-client trust profiles + state backends) is a leaf on
#: the same budget: stdlib + numpy + obs, embeddable from the live
#: service, the simulators, and core's estimator prior alike.
TRUST_EXTERNAL_ALLOWED = frozenset({"numpy"})

#: ``obs`` must stay importable from *any* layer, including core, so it
#: may not pull in anything beyond the stdlib — not even numpy.
OBS_EXTERNAL_ALLOWED: frozenset[str] = frozenset()


@dataclass(frozen=True)
class ImportEdge:
    """One resolved module-to-module import inside the package."""

    src: str  # importing module, e.g. "repro.cloudsim.coordinator"
    dst: str  # imported module, e.g. "repro.core.greedy"
    line: int
    col: int
    typing_only: bool

    @property
    def src_layer(self) -> str | None:
        return _layer_of(self.src)

    @property
    def dst_layer(self) -> str | None:
        return _layer_of(self.dst)


def _layer_of(name: str) -> str | None:
    parts = name.split(".")
    return parts[1] if len(parts) >= 2 else None


def import_edges(program: ProgramContext) -> list[ImportEdge]:
    """Every internal import edge, deduplicated and sorted.

    ``from repro.core import greedy_sizes`` is resolved to the submodule
    ``repro.core.greedy_sizes`` when one exists, else to the package —
    the edge should point at the real provider, not the facade, so the
    graph shows true coupling.
    """
    edges: set[ImportEdge] = set()
    for info in program.project_modules():
        for record in info.imports:
            if not program.is_internal(record.target):
                continue
            if record.names:
                for name in record.names:
                    submodule = f"{record.target}.{name}"
                    dst = (
                        submodule
                        if program.resolve_internal(submodule) is not None
                        else record.target
                    )
                    edges.add(
                        ImportEdge(
                            src=info.name,
                            dst=dst,
                            line=record.line,
                            col=record.col,
                            typing_only=record.typing_only,
                        )
                    )
            else:
                edges.add(
                    ImportEdge(
                        src=info.name,
                        dst=record.target,
                        line=record.line,
                        col=record.col,
                        typing_only=record.typing_only,
                    )
                )
    return sorted(edges, key=lambda e: (e.src, e.dst, e.line))


@project_rule(
    "P1",
    "import-layering",
    "The package layering contract (obs -> stdlib only; detect/trust "
    "-> stdlib/numpy/obs; core -> stdlib/numpy/obs/trust; sim/analysis "
    "-> core; cloudsim -> core+sim+detect+trust; runtime -> "
    "core+sim+cloudsim; service -> core+sim+analysis+detect+trust; "
    "experiments -> anything; "
    "devtools isolated; every non-devtools layer may use obs) "
    "keeps the paper's math independently testable and the linter "
    "side-effect free; an import against the grain couples layers the "
    "architecture keeps apart.",
)
def check_import_layering(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    # Internal edges against the layer contract.
    for edge in import_edges(program):
        if edge.typing_only:
            continue
        src_layer, dst_layer = edge.src_layer, edge.dst_layer
        if src_layer is None or dst_layer is None:
            continue  # top-level facade modules are exempt
        if src_layer == dst_layer:
            continue
        allowed = LAYER_CONTRACT.get(src_layer)
        if allowed is not None and dst_layer not in allowed:
            info = program.modules[edge.src]
            yield (
                info.ctx.path,
                edge.line,
                edge.col,
                f"layering violation: `{src_layer}` may not import from "
                f"`{dst_layer}` (edge {edge.src} -> {edge.dst}); allowed: "
                f"{_describe_allowed(src_layer)}",
            )
    # External dependency budgets: core gets stdlib + numpy; obs is
    # stdlib-only so every layer (core included) can depend on it.
    budgets = {
        "core": (
            CORE_EXTERNAL_ALLOWED,
            "core/ may only depend on the stdlib and numpy, not "
            "`{top}` — keep the algorithmic layer lightweight",
        ),
        "detect": (
            DETECT_EXTERNAL_ALLOWED,
            "detect/ may only depend on the stdlib and numpy, not "
            "`{top}` — the sketches must embed anywhere",
        ),
        "trust": (
            TRUST_EXTERNAL_ALLOWED,
            "trust/ may only depend on the stdlib and numpy, not "
            "`{top}` — the trust ladder must embed anywhere",
        ),
        "obs": (
            OBS_EXTERNAL_ALLOWED,
            "obs/ must stay stdlib-only (it sits below every other "
            "layer), not `{top}`",
        ),
    }
    for info in program.project_modules():
        budget = budgets.get(info.layer or "")
        if budget is None:
            continue
        allowed_external, message = budget
        for record in info.imports:
            if record.typing_only or program.is_internal(record.target):
                continue
            top = record.target.split(".", 1)[0]
            if program.is_stdlib(top) or top in allowed_external:
                continue
            yield (
                info.ctx.path,
                record.line,
                record.col,
                message.format(top=top),
            )


def _describe_allowed(layer: str) -> str:
    allowed = LAYER_CONTRACT.get(layer, frozenset())
    if not allowed:
        return "nothing outside its own layer"
    return ", ".join(sorted(allowed))


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def render_dot(program: ProgramContext) -> str:
    """Graphviz dot of the module import graph, clustered by layer."""
    edges = [e for e in import_edges(program) if not e.typing_only]
    by_layer: dict[str, list[str]] = {}
    for info in program.project_modules():
        layer = info.layer or "<top>"
        by_layer.setdefault(layer, []).append(info.name)
    lines = [
        "digraph imports {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="Helvetica"];',
    ]
    for index, layer in enumerate(sorted(by_layer)):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{layer}";')
        for name in sorted(by_layer[layer]):
            short = name.split(".", 1)[-1] if "." in name else name
            lines.append(f'    "{name}" [label="{short}"];')
        lines.append("  }")
    for edge in edges:
        lines.append(f'  "{edge.src}" -> "{edge.dst}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_graph_json(program: ProgramContext) -> dict:
    """JSON-serializable import graph (modules, edges, layer summary)."""
    edges = import_edges(program)
    layer_edges: dict[str, int] = {}
    for edge in edges:
        if edge.typing_only:
            continue
        src, dst = edge.src_layer or "<top>", edge.dst_layer or "<top>"
        if src != dst:
            key = f"{src} -> {dst}"
            layer_edges[key] = layer_edges.get(key, 0) + 1
    return {
        "modules": [
            {"name": info.name, "layer": info.layer}
            for info in program.project_modules()
        ],
        "edges": [
            {
                "src": edge.src,
                "dst": edge.dst,
                "line": edge.line,
                "typing_only": edge.typing_only,
            }
            for edge in edges
        ],
        "layer_edge_counts": dict(sorted(layer_edges.items())),
        "contract": {
            layer: sorted(allowed)
            for layer, allowed in sorted(LAYER_CONTRACT.items())
        },
    }
