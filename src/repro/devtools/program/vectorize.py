"""Rule P14: vectorization-readiness inventory of the numeric core.

The ROADMAP's scale item — plan + estimate for ``N = 10^6`` clients in
sub-second time — requires the scalar Python accumulation loops in the
estimator/planner core (the Algorithm 1 DP in ``dp.py``, the (max,+)
convolution in ``dp_fast.py``, the occupancy/Poisson-binomial sweeps in
``estimator.py``) to become numpy array ops.  This pass does not demand
the rewrite; it *inventories* it: every scalar for-loop in ``core/``
that accumulates into a float/probability array is reported with its
enclosing function, iteration expression (the loop-trip-count
provenance), and nest depth.  The findings live in the committed
``.reprolint-p14-baseline.json`` ratchet, which CI allows only to
shrink — so the vectorization PR burns the inventory down to zero and
new scalar hot loops cannot sneak into ``core/`` meanwhile.

Messages avoid line numbers (baseline fingerprints must survive
unrelated edits); the iteration expression + function name identify the
loop.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .context import ProgramContext
from .numflow import Domain, get_numeric_index

__all__ = []

#: the layer whose loops feed the ROADMAP vectorization item.
_CORE_LAYERS = frozenset({"core"})

#: element domains that mark an array as numeric payload (stores into
#: int bookkeeping arrays — argmax indices — ride along with these).
_NUMERIC_DOMAINS = frozenset(
    {Domain.LOG, Domain.LINEAR, Domain.LINEAR_RAW, Domain.FLOAT}
)


def _layer(module: str) -> str | None:
    parts = module.split(".")
    return parts[1] if len(parts) >= 2 else None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


def _stored_array_names(loop: ast.For) -> Iterator[str]:
    """Names of arrays written element-wise inside ``loop``'s body."""
    for node in ast.walk(loop):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                yield target.value.id


def _qualifies(loop: ast.For, domain_of) -> bool:
    """A scalar accumulation loop: element-wise stores into an array
    whose inferred element domain is numeric (log/probability/float)."""
    return any(
        domain_of(ast.Name(id=name, ctx=ast.Load())) in _NUMERIC_DOMAINS
        for name in _stored_array_names(loop)
    )


def _nest_depth(loop: ast.For) -> int:
    """1 + the deepest chain of nested for-loops inside ``loop``."""
    return 1 + _subtree_depth(loop)


def _subtree_depth(node: ast.AST) -> int:
    best = 0
    for child in ast.iter_child_nodes(node):
        depth = _subtree_depth(child)
        if isinstance(child, ast.For):
            depth += 1
        best = max(best, depth)
    return best


@project_rule(
    "P14",
    "vectorization-readiness",
    "Scalar Python accumulation loops over per-client/per-replica "
    "probability arrays cap the numeric core at thousands of clients; "
    "the ROADMAP scale item needs numpy array ops for N in the "
    "millions.  Findings are a ratcheted inventory "
    "(.reprolint-p14-baseline.json, may only shrink): vectorize the "
    "loop to remove an entry, and keep new scalar hot loops out of "
    "core/.",
)
def check_vectorization_readiness(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    index = get_numeric_index(program)
    for qualname in sorted(index.graph.functions):
        fn = index.graph.functions[qualname]
        if _layer(fn.module) not in _CORE_LAYERS:
            continue
        info = program.modules.get(fn.module)
        if info is None or info.is_consumer or info.ctx.is_test_file:
            continue
        evaluator = index.evaluator(fn)
        loops = [
            node for node in ast.walk(fn.node) if isinstance(node, ast.For)
        ]
        qualifying = [
            loop for loop in loops if _qualifies(loop, evaluator.domain_of)
        ]
        covered: set[int] = set()
        for loop in qualifying:
            for sub in ast.walk(loop):
                if isinstance(sub, ast.For) and sub is not loop:
                    covered.add(id(sub))
        for loop in qualifying:
            if id(loop) in covered:
                continue
            yield (
                info.ctx.path,
                loop.lineno,
                loop.col_offset,
                "scalar accumulation loop over a float/probability "
                f"array in `{_short(fn.qualname)}` (for-loop over "
                f"`{ast.unparse(loop.iter)}`, nest depth "
                f"{_nest_depth(loop)}) — vectorize with numpy array "
                "ops per the ROADMAP estimator/planner scale item",
            )
