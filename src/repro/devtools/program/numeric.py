"""Rules P11-P13: numeric-domain discipline over the numflow index.

The estimator/planner core computes every probability in log-space and
exponentiates last (:mod:`repro.core.combinatorics`); these passes make
the three failure classes of that convention machine-checked:

- **P11 log-domain confusion** — a log-probability used as if it were
  linear (mixed arithmetic, ``sum()`` over logs, log-vs-linear
  comparisons, unclamped ``exp()`` of a full-magnitude log);
- **P12 probability-range escapes** — exp-derived linear probabilities
  returned to callers without a clip/validation, the exact bug class of
  the PR 1 ``survival_probabilities`` ulp-leak fix;
- **P13 numeric-stability anti-patterns** — expression shapes with a
  strictly better stable form (``log(1-x)`` -> ``log1p``,
  ``log(sum(exp))`` -> ``logsumexp``, raw lgamma differences outside
  the combinatorics module, unguarded division by a possibly-zero
  count).

Escape hatches: ``# reprolint: disable=P11/P12/P13`` with a reviewer
-worthy reason, or — for P11/P12 — a ``# domain: <log|linear> <reason>``
annotation that corrects the *inference* instead of silencing the rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .callgraph import FunctionInfo
from .context import ModuleInfo, ProgramContext
from .numflow import (
    Domain,
    NumericIndex,
    get_numeric_index,
)

__all__ = []

#: layers whose return values P12 polices: the pure numeric stack.  The
#: service/experiments layers consume these APIs; the contract is that
#: probabilities are validated before they leave the producers.
_P12_LAYERS = frozenset({"core", "sim", "analysis"})

#: modules exempt from the lgamma-difference check: the one place the
#: raw ``lgamma`` algebra is supposed to live (and be tested).
_LGAMMA_HOME_MARKER = "combinatorics"

_LOG_NAMES = frozenset({"log"})
_LOG_RECEIVERS = frozenset({"math", "np", "numpy"})
_EXP_NAMES = frozenset({"exp", "expm1"})
_LGAMMA_NAMES = frozenset({"lgamma", "gammaln"})
_SUM_NAMES = frozenset({"sum"})
_CLAMP_MIN_BOUND = (1, 1.0)


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _receiver_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _is_log_call(node: ast.AST) -> bool:
    """A trusted ``log(...)`` call (math/numpy receiver or bare name)."""
    if not isinstance(node, ast.Call):
        return False
    name = _call_name(node)
    if name not in _LOG_NAMES:
        return False
    if isinstance(node.func, ast.Name):
        return True
    return _receiver_name(node) in _LOG_RECEIVERS


def _is_exp_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) in _EXP_NAMES


def _is_lgamma_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) in _LGAMMA_NAMES


def _is_sum_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) in _SUM_NAMES


def _sum_operand(call: ast.Call) -> ast.AST | None:
    """What a ``sum(x)`` / ``np.sum(x)`` / ``x.sum()`` call aggregates."""
    if call.args:
        return call.args[0]
    if isinstance(call.func, ast.Attribute):
        return call.func.value
    return None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


def _numeric_functions(
    program: ProgramContext,
) -> Iterator[tuple[FunctionInfo, ModuleInfo, NumericIndex]]:
    """Every analyzable project function, with its module and the index."""
    index = get_numeric_index(program)
    for qualname in sorted(index.graph.functions):
        fn = index.graph.functions[qualname]
        info = program.modules.get(fn.module)
        if info is None or info.is_consumer or info.ctx.is_test_file:
            continue
        yield fn, info, index


def _parent_map(fn_node: ast.AST) -> dict[ast.AST, ast.AST]:
    return {
        child: parent
        for parent in ast.walk(fn_node)
        for child in ast.iter_child_nodes(parent)
    }


def _is_clamped(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> bool:
    """True when ``node`` sits inside a clip/min-to-1 clamping call."""
    current: ast.AST | None = node
    while current is not None:
        current = parents.get(current)
        if isinstance(current, ast.stmt):
            return False
        if not isinstance(current, ast.Call):
            continue
        name = _call_name(current)
        if name == "clip" and len(current.args) >= 3:
            return True
        if name == "min" and any(
            isinstance(a, ast.Constant) and a.value in _CLAMP_MIN_BOUND
            for a in current.args
        ):
            return True
    return False


def _is_log_ratio(node: ast.AST, domain_of) -> bool:
    """``log_a - log_b``: the established exponentiate-a-ratio idiom."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and domain_of(node.left) is Domain.LOG
        and domain_of(node.right) is Domain.LOG
    )


# ----------------------------------------------------------------------
# P11 — log-domain confusion
# ----------------------------------------------------------------------
@project_rule(
    "P11",
    "log-domain-confusion",
    "Log-probabilities and linear probabilities are both floats, so "
    "mixing the scales computes garbage silently: adding a log to a "
    "linear value, summing log-probs with sum() (that is a product's "
    "log, not a sum of probabilities — use logsumexp), comparing "
    "across scales, or exponentiating a full-magnitude log without "
    "clamping (exp overflows past ~709; exponentiate a difference of "
    "logs, or clip into [0, 1]).  Correct a wrong inference with "
    "`# domain: <log|linear> <reason>` instead of suppressing.",
)
def check_log_domain_confusion(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    for fn, info, index in _numeric_functions(program):
        evaluator = index.evaluator(fn)
        domain_of = evaluator.domain_of
        parents: dict[ast.AST, ast.AST] | None = None
        for node in ast.walk(fn.node):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
            ):
                left = domain_of(node.left)
                right = domain_of(node.right)
                mixed = (
                    left is Domain.LOG and right.is_linear_prob
                ) or (right is Domain.LOG and left.is_linear_prob)
                if mixed:
                    yield (
                        info.ctx.path,
                        node.lineno,
                        node.col_offset,
                        "log-domain value combined with a linear-domain "
                        f"value in `{_short(fn.qualname)}` — bring both "
                        "sides to one scale (exp/log) before the "
                        "arithmetic",
                    )
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                domains = [domain_of(side) for side in sides]
                if any(d is Domain.LOG for d in domains) and any(
                    d.is_linear_prob for d in domains
                ):
                    yield (
                        info.ctx.path,
                        node.lineno,
                        node.col_offset,
                        "log-domain value compared against a linear-"
                        f"domain value in `{_short(fn.qualname)}` — "
                        "the comparison is between different scales",
                    )
            elif isinstance(node, ast.Call):
                if _is_sum_call(node):
                    operand = _sum_operand(node)
                    if operand is not None and (
                        domain_of(operand) is Domain.LOG
                    ):
                        yield (
                            info.ctx.path,
                            node.lineno,
                            node.col_offset,
                            "sum() over log-probabilities in "
                            f"`{_short(fn.qualname)}` — a sum of logs "
                            "is the log of a product; to sum the "
                            "probabilities themselves use logsumexp",
                        )
                elif _is_exp_call(node) and node.args:
                    arg = node.args[0]
                    if domain_of(arg) is not Domain.LOG:
                        continue
                    if _is_log_ratio(arg, domain_of):
                        continue
                    if parents is None:
                        parents = _parent_map(fn.node)
                    if _is_clamped(node, parents):
                        continue
                    yield (
                        info.ctx.path,
                        node.lineno,
                        node.col_offset,
                        "exp() of an unclamped log-domain value in "
                        f"`{_short(fn.qualname)}` — a full-magnitude "
                        "log overflows exp(); exponentiate a "
                        "difference of logs or clamp the result "
                        "(np.clip(..., 0.0, 1.0) / min(1.0, ...))",
                    )


# ----------------------------------------------------------------------
# P12 — probability-range escapes
# ----------------------------------------------------------------------
@project_rule(
    "P12",
    "probability-range-escape",
    "An exp-derived probability can leave [0, 1] by a few ulp when "
    "numerator and denominator come from different lgamma "
    "implementations (the PR 1 survival_probabilities bug): returning "
    "it unvalidated leaks >1.0 'probabilities' into downstream "
    "expectations and comparisons.  Clamp at the producer "
    "(np.clip(..., 0.0, 1.0) / min(1.0, ...)) or mark a validated "
    "boundary with `# domain: linear <reason>`.",
)
def check_probability_range_escape(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    for fn, info, index in _numeric_functions(program):
        if info.layer not in _P12_LAYERS:
            continue
        evaluator = index.evaluator(fn)
        suppressions = info.ctx.suppressions
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if suppressions.domain_at(node.lineno) is not None:
                continue
            if evaluator.domain_of(node.value) is Domain.LINEAR_RAW:
                yield (
                    info.ctx.path,
                    node.lineno,
                    node.col_offset,
                    f"`{_short(fn.qualname)}` returns an exp-derived "
                    "probability that was never clamped to [0, 1] — "
                    "ulp leaks push it outside the range; clip at "
                    "this boundary (np.clip/min(1.0, ...)) or declare "
                    "it validated with `# domain: linear <reason>`",
                )


# ----------------------------------------------------------------------
# P13 — numeric-stability anti-patterns
# ----------------------------------------------------------------------
@project_rule(
    "P13",
    "numeric-stability",
    "Expression shapes with a strictly more stable equivalent: "
    "log(1 - x) cancels near x=0 (use log1p(-x), or log1mexp for "
    "x=exp(t)); log(sum(exp(...))) overflows where logsumexp does "
    "not; a difference of near-equal lgamma terms cancels "
    "catastrophically outside the tested combinatorics helpers; and "
    "dividing by an unguarded len()/.size count raises (or NaNs) on "
    "empty input.",
)
def check_numeric_stability(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    for fn, info, _ in _numeric_functions(program):
        lgamma_exempt = _LGAMMA_HOME_MARKER in fn.module
        guards: list[str] | None = None
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                hit = _stability_call_hit(node, fn)
                if hit is not None:
                    yield (info.ctx.path, node.lineno, node.col_offset, hit)
            elif isinstance(node, ast.BinOp):
                if (
                    not lgamma_exempt
                    and isinstance(node.op, ast.Sub)
                    and _is_lgamma_call(node.left)
                    and _is_lgamma_call(node.right)
                ):
                    yield (
                        info.ctx.path,
                        node.lineno,
                        node.col_offset,
                        "difference of lgamma terms in "
                        f"`{_short(fn.qualname)}` — near-equal "
                        "arguments cancel catastrophically; use "
                        "repro.core.combinatorics.log_binomial (the "
                        "tested home of the lgamma algebra)",
                    )
                elif isinstance(node.op, ast.Div):
                    operand = _count_denominator(node.right)
                    if operand is None:
                        continue
                    if guards is None:
                        guards = _guard_texts(fn.node)
                    if any(operand in guard for guard in guards):
                        continue
                    yield (
                        info.ctx.path,
                        node.lineno,
                        node.col_offset,
                        f"division by `{ast.unparse(node.right)}` with "
                        "no emptiness guard in "
                        f"`{_short(fn.qualname)}` — a zero count "
                        "raises ZeroDivisionError (or yields NaN "
                        "under numpy); guard the empty case first",
                    )


def _stability_call_hit(node: ast.Call, fn: FunctionInfo) -> str | None:
    name = _call_name(node)
    if _is_log_call(node) and len(node.args) == 1:
        arg = node.args[0]
        if (
            isinstance(arg, ast.BinOp)
            and isinstance(arg.op, ast.Sub)
            and isinstance(arg.left, ast.Constant)
            and arg.left.value in (1, 1.0)
        ):
            if any(_is_exp_call(sub) for sub in ast.walk(arg.right)):
                return (
                    f"log(1 - exp(...)) in `{_short(fn.qualname)}` — "
                    "cancels for exp(...) near 1 and near 0; use "
                    "repro.core.combinatorics.log1mexp"
                )
            return (
                f"log(1 - x) in `{_short(fn.qualname)}` cancels for "
                "small x — use log1p(-x)"
            )
        if _is_sum_call(arg):
            operand = _sum_operand(arg)
            if operand is not None and any(
                _is_exp_call(sub) for sub in ast.walk(operand)
            ):
                return (
                    f"log(sum(exp(...))) in `{_short(fn.qualname)}` "
                    "overflows for large logs — use "
                    "repro.core.combinatorics.logsumexp"
                )
    elif name == "log1p" and len(node.args) == 1:
        arg = node.args[0]
        if (
            isinstance(arg, ast.UnaryOp)
            and isinstance(arg.op, ast.USub)
            and _is_exp_call(arg.operand)
        ):
            return (
                f"log1p(-exp(x)) in `{_short(fn.qualname)}` loses "
                "precision for x near 0 — use "
                "repro.core.combinatorics.log1mexp(x)"
            )
    return None


def _count_denominator(node: ast.AST) -> str | None:
    """The guarded-entity text when ``node`` is a count denominator."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
    ):
        return ast.unparse(node.args[0])
    if isinstance(node, ast.Attribute) and node.attr == "size":
        return ast.unparse(node.value)
    return None


def _guard_texts(fn_node: ast.AST) -> list[str]:
    """Unparsed test expressions that may guard a division."""
    texts: list[str] = []
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.If, ast.While, ast.Assert, ast.IfExp)):
            texts.append(ast.unparse(node.test))
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in node.generators:
                texts.extend(ast.unparse(cond) for cond in comp.ifs)
    return texts
