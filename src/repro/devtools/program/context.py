"""Whole-program analysis context: module index and import edges.

:class:`ProgramContext` parses every module of one package tree exactly
once (reusing the per-file :class:`~repro.devtools.context.FileContext`,
so suppression comments keep working at project scope) and records the
resolved import edges between them.  *Consumer* roots — ``tests/``,
``examples/``, ``benchmarks/`` — are parsed too, but only as evidence of
how the package is used: project rules never report violations inside
them.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..context import FileContext

__all__ = ["ImportRecord", "ModuleInfo", "ProgramContext"]

#: directory names never worth indexing (mirrors the file runner).
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist"}
)


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, resolved to a dotted target.

    ``target`` is the imported module ("repro.core.greedy" or "numpy");
    ``names`` the *original* imported names (empty for plain ``import
    x``) with ``asnames`` their local aliases (``None`` where unaliased);
    ``module_alias`` is the local binding of a plain import (``np`` for
    ``import numpy as np``, the dotted head for ``import a.b``); and
    ``typing_only`` is True for imports guarded by ``TYPE_CHECKING`` —
    those never execute at runtime, so the layering contract (P1)
    ignores them.
    """

    target: str
    names: tuple[str, ...]
    asnames: tuple[str | None, ...]
    line: int
    col: int
    typing_only: bool
    module_alias: str | None = None

    def bindings(self) -> tuple[tuple[str, str], ...]:
        """(local name, original name) pairs bound by a from-import."""
        return tuple(
            (alias or original, original)
            for original, alias in zip(self.names, self.asnames)
        )


@dataclass
class ModuleInfo:
    """One analyzed module inside the program."""

    name: str  # dotted, e.g. "repro.cloudsim.system"
    ctx: FileContext
    is_consumer: bool = False
    imports: list[ImportRecord] = field(default_factory=list)

    @property
    def layer(self) -> str | None:
        """First subpackage under the root ("core", "cloudsim", ...).

        Top-level modules (``repro/__init__.py``) have no layer and are
        exempt from the layering contract.
        """
        parts = self.name.split(".")
        return parts[1] if len(parts) >= 2 else None

    @property
    def is_package(self) -> bool:
        return self.ctx.path.name == "__init__.py"

    @property
    def package(self) -> str:
        """The package this module lives in (itself, for packages)."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else self.name


class ProgramContext:
    """Everything a project rule needs to know about the whole tree."""

    def __init__(self, root: Path, root_package: str) -> None:
        self.root = root
        self.root_package = root_package
        self.modules: dict[str, ModuleInfo] = {}
        self.parse_failures: list[tuple[Path, str]] = []
        self._by_path: dict[Path, ModuleInfo] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        root: Path | str,
        consumer_roots: tuple[Path, ...] | tuple[str, ...] = (),
    ) -> "ProgramContext":
        """Index the package rooted at ``root`` (a directory named after
        the package, e.g. ``src/repro``) plus any consumer roots."""
        root = Path(root)
        program = cls(root=root, root_package=root.name)
        for path in _iter_python_files(root):
            program._add_module(path, _module_name(root, path), consumer=False)
        for consumer in consumer_roots:
            consumer = Path(consumer)
            if not consumer.is_dir():
                continue
            for path in _iter_python_files(consumer):
                name = f"<{consumer.name}>." + _module_name(consumer, path)
                program._add_module(path, name, consumer=True)
        return program

    def _add_module(self, path: Path, name: str, consumer: bool) -> None:
        try:
            ctx = FileContext.from_path(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            self.parse_failures.append((path, str(exc)))
            return
        info = ModuleInfo(name=name, ctx=ctx, is_consumer=consumer)
        info.imports = list(_extract_imports(info, self.root_package))
        self.modules[name] = info
        self._by_path[path.resolve()] = info

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def project_modules(self) -> Iterator[ModuleInfo]:
        """Analyzed (non-consumer) modules, in deterministic name order."""
        for name in sorted(self.modules):
            info = self.modules[name]
            if not info.is_consumer:
                yield info

    def all_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            yield self.modules[name]

    def module_at(self, path: Path) -> ModuleInfo | None:
        return self._by_path.get(Path(path).resolve())

    def is_internal(self, target: str) -> bool:
        """True when ``target`` names a module inside the package."""
        return target == self.root_package or target.startswith(
            self.root_package + "."
        )

    def resolve_internal(self, target: str) -> ModuleInfo | None:
        """The :class:`ModuleInfo` for an internal dotted target.

        ``from repro.core import greedy_sizes`` records target
        ``repro.core``; ``greedy_sizes`` may itself be the submodule or a
        name inside the package — both resolutions are attempted by
        callers via :meth:`resolve_internal` on the longer name first.
        """
        return self.modules.get(target)

    def is_stdlib(self, target: str) -> bool:
        top = target.split(".", 1)[0]
        return top in sys.stdlib_module_names or top == "__future__"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _iter_python_files(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        if any(
            part in _SKIP_DIRS or part.endswith(".egg-info")
            for part in path.parts
        ):
            continue
        yield path


def _module_name(root: Path, path: Path) -> str:
    """Dotted module name of ``path`` relative to the package ``root``."""
    relative = path.relative_to(root).with_suffix("")
    parts = [root.name, *relative.parts]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _extract_imports(
    info: ModuleInfo, root_package: str
) -> Iterator[ImportRecord]:
    """Resolve every import statement in ``info`` to dotted targets."""
    for node, typing_only in _walk_imports(info.ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = (
                    alias.asname
                    if alias.asname is not None
                    else alias.name.split(".", 1)[0]
                )
                yield ImportRecord(
                    target=alias.name,
                    names=(),
                    asnames=(),
                    line=node.lineno,
                    col=node.col_offset,
                    typing_only=typing_only,
                    module_alias=bound,
                )
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_from(node, info)
            if target is None:
                continue
            yield ImportRecord(
                target=target,
                names=tuple(alias.name for alias in node.names),
                asnames=tuple(alias.asname for alias in node.names),
                line=node.lineno,
                col=node.col_offset,
                typing_only=typing_only,
            )


def _resolve_from(node: ast.ImportFrom, info: ModuleInfo) -> str | None:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    # Relative import: climb ``level`` packages from the module's own
    # package (a package's __init__ counts as being inside itself).
    base = info.name.split(".")
    if not info.is_package:
        base = base[:-1]
    climb = node.level - 1
    if climb > len(base):
        return None
    anchor = base[: len(base) - climb]
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor) if anchor else None


def _walk_imports(
    tree: ast.Module,
) -> Iterator[tuple[ast.Import | ast.ImportFrom, bool]]:
    """Yield import nodes with a flag for TYPE_CHECKING-guarded ones."""

    def visit(node: ast.AST, typing_only: bool) -> Iterator[
        tuple[ast.Import | ast.ImportFrom, bool]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child, typing_only
            elif isinstance(child, ast.If) and _is_type_checking_test(
                child.test
            ):
                yield from visit(child, True)
            else:
                yield from visit(child, typing_only)

    yield from visit(tree, False)


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False
