"""Rule P9: shared mutable state needs a lock or a single writer.

The live service runs many concurrent tasks on one event loop: the
detection sweep, a handler task per control-channel connection, a task
per replica connection, the load generator's per-client coroutines.
asyncio interleaves them at every ``await`` — so a container attribute
(assignment map, whitelist, connection set) written from **two or more
distinct task roots** can interleave read-modify-write sequences and
corrupt the defense state the shuffle loop plans from.  The failure is
probabilistic and load-dependent: invisible in tests, live at scale —
exactly what the 100× scaling item must not re-introduce.

The pass combines the asyncflow indices: task roots × forward
reachability × attribute-write sites, restricted to *container-typed*
attributes (scalar flag/counter writes are atomic enough under the
single-threaded loop; containers are where multi-step mutations live).
A write under ``[async] with <...lock...>:`` counts as guarded; a
genuinely single-writer design is documented in place with
``# reprolint: disable=P9`` plus a justification.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..registry import project_rule
from .asyncflow import (
    collect_attr_writes,
    container_attr_kinds,
    find_task_roots,
    reachable_from,
)
from .callgraph import build_call_graph
from .context import ProgramContext

__all__ = []

#: layers whose instance state the race pass polices.
_RACE_LAYERS = frozenset({"service"})


@project_rule(
    "P9",
    "shared-state-race",
    "A container attribute written from two or more distinct async "
    "task roots can interleave read-modify-write sequences at any "
    "await and corrupt defense state (assignments, whitelists, "
    "connection sets) — guard the writes with one lock, or document "
    "single-writer ownership with `# reprolint: disable=P9` and a "
    "justification.",
)
def check_shared_state_races(
    program: ProgramContext,
) -> Iterator[tuple[Path, int, int, str]]:
    graph = build_call_graph(program)
    roots = find_task_roots(graph)
    root_names = sorted({root.qualname for root in roots})
    if len(root_names) < 2:
        return
    # A spawner's closure ends where a spawned task's own root begins:
    # otherwise every write inside the detect loop would also be
    # attributed to the main coroutine that created the loop's task.
    all_roots = frozenset(root_names)
    closures = {
        name: reachable_from(
            graph, {name}, stop=frozenset(all_roots - {name})
        )
        for name in root_names
    }
    kinds_by_module: dict[str, dict[str, str]] = {}
    grouped: dict[tuple[str, str, str], list] = {}
    for write in collect_attr_writes(graph):
        if _layer(write.module) not in _RACE_LAYERS:
            continue
        info = program.modules.get(write.module)
        if info is None or info.ctx.is_test_file or info.is_consumer:
            continue
        if write.module not in kinds_by_module:
            kinds_by_module[write.module] = container_attr_kinds(
                info.ctx.tree
            )
        if write.attr not in kinds_by_module[write.module]:
            continue
        grouped.setdefault(
            (write.module, write.cls, write.attr), []
        ).append(write)
    for (module, cls, attr), writes in sorted(grouped.items()):
        writers = {write.qualname for write in writes}
        hit_roots = sorted(
            name
            for name in root_names
            if writers & closures[name]
        )
        if len(hit_roots) < 2:
            continue
        if all(write.locked for write in writes):
            continue
        site = min(
            (w for w in writes if not w.locked),
            key=lambda w: (w.line, w.col),
        )
        info = program.modules[module]
        kind = kinds_by_module[module][attr]
        names = ", ".join(f"`{_short(name)}`" for name in hit_roots)
        yield (
            info.ctx.path,
            site.line,
            site.col,
            f"{kind} attribute `{cls}.{attr}` is written from "
            f"{len(hit_roots)} distinct task roots ({names}) without a "
            "lock: interleaved read-modify-write at an await corrupts "
            "shared defense state — hold one asyncio.Lock around every "
            "write, or document single-writer ownership with "
            "`# reprolint: disable=P9` and why it is safe",
        )


def _layer(module: str) -> str | None:
    parts = module.split(".")
    return parts[1] if len(parts) >= 2 else None


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname
