"""repro.devtools.program — whole-program analysis for reprolint.

Per-file rules (R1-R8) police invariants visible inside one module, but
the reproducibility contract the paper's math depends on is
*cross-module*: the seeded ``numpy.random.Generator`` must flow from the
scenario configuration into every stochastic component, event order in
the DES must never depend on ``set``/``dict`` hash order, and package
layering must keep the algorithmic ``core`` free of simulator
dependencies.  This subpackage builds one :class:`ProgramContext` over
the whole tree — module index, import graph, approximate call graph —
and runs the project rules (P1-P5) on it:

- **P1** ``import-layering`` — declared package layering contract over
  the import graph (``core`` -> stdlib/numpy only; ``sim``/``analysis``
  -> ``core``; ``cloudsim`` -> ``core``+``sim``; ``experiments`` ->
  anything; ``devtools`` isolated), with dot/JSON graph export.
- **P2** ``rng-provenance`` — interprocedural tracking of Generator
  construction: flags call paths through which ``sim``/``cloudsim`` can
  reach an entropy-seeded ``default_rng()`` (directly, via a
  seed-forwarding helper called without a seed, or via a dataclass
  ``default_factory``).
- **P3** ``unordered-iteration`` — iteration over ``set``s or unsorted
  ``dict`` views inside functions from which DES ``schedule()`` calls,
  heap pushes, or client admissions are reachable.
- **P4** ``no-wall-clock`` — wall-clock reads (``time.time``,
  ``datetime.now``, ...) inside the simulator layers.
- **P5** ``dead-export`` — ``__init__``/``__all__`` exports that no
  other module (including tests/examples) actually uses, plus exports
  that do not resolve at all.

See ``docs/static-analysis.md`` for the full catalogue and the
baseline/ratchet workflow, and ``docs/import-graph.md`` for the rendered
layering graph.
"""

from __future__ import annotations

from .baseline import (
    Baseline,
    BaselineComparison,
    compare,
    load_baseline,
    write_baseline,
)
from .context import ModuleInfo, ProgramContext
from .graph import LAYER_CONTRACT, ImportEdge, render_dot, render_graph_json

# Importing the pass modules registers every project rule (P1-P5).
from . import api as _api  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import graph as _graph  # noqa: F401
from . import rng as _rng  # noqa: F401

__all__ = [
    "Baseline",
    "BaselineComparison",
    "ImportEdge",
    "LAYER_CONTRACT",
    "ModuleInfo",
    "ProgramContext",
    "compare",
    "load_baseline",
    "render_dot",
    "render_graph_json",
    "write_baseline",
]
