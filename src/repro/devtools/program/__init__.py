"""repro.devtools.program — whole-program analysis for reprolint.

Per-file rules (R1-R8) police invariants visible inside one module, but
the reproducibility contract the paper's math depends on is
*cross-module*: the seeded ``numpy.random.Generator`` must flow from the
scenario configuration into every stochastic component, event order in
the DES must never depend on ``set``/``dict`` hash order, and package
layering must keep the algorithmic ``core`` free of simulator
dependencies.  This subpackage builds one :class:`ProgramContext` over
the whole tree — module index, import graph, approximate call graph —
and runs the project rules (P1-P14) on it:

- **P1** ``import-layering`` — declared package layering contract over
  the import graph (``core`` -> stdlib/numpy only; ``sim``/``analysis``
  -> ``core``; ``cloudsim`` -> ``core``+``sim``; ``experiments`` ->
  anything; ``devtools`` isolated), with dot/JSON graph export.
- **P2** ``rng-provenance`` — interprocedural tracking of Generator
  construction: flags call paths through which ``sim``/``cloudsim`` can
  reach an entropy-seeded ``default_rng()`` (directly, via a
  seed-forwarding helper called without a seed, or via a dataclass
  ``default_factory``).
- **P3** ``unordered-iteration`` — iteration over ``set``s or unsorted
  ``dict`` views inside functions from which DES ``schedule()`` calls,
  heap pushes, or client admissions are reachable.
- **P4** ``no-wall-clock`` — wall-clock reads (``time.time``,
  ``datetime.now``, ...) inside the simulator layers.
- **P5** ``dead-export`` — ``__init__``/``__all__`` exports that no
  other module (including tests/examples) actually uses, plus exports
  that do not resolve at all.

The concurrency era (PRs 3-5) added an asyncio service, a process-pool
runtime, and metric hot paths; the second wave of passes polices those
surfaces via the shared :mod:`asyncflow` indices (task roots, forward
reachability, attribute writes):

- **P6** ``async-blocking`` — blocking calls (``time.sleep``, sync
  I/O, ``subprocess``, CPU-heavy ``repro.core`` entry points) reachable
  inside service-layer ``async def`` bodies, with the
  ``# event-loop-safe: <reason>`` justification marker.
- **P7** ``orphan-coroutine`` — coroutine calls never awaited and
  ``create_task()`` handles neither retained nor given a done-callback.
- **P8** ``executor-submission`` — ``Task(...)``/``pool.submit(...)``
  arguments must be module-level functions with JSON-canonical params
  (no lambdas, closures, bound methods, partials, sets, bytes).
- **P9** ``shared-state-race`` — container attributes written from
  more than one distinct async task root without a lock or documented
  single-writer ownership.
- **P10** ``hot-path-discipline`` — per-request handler closures must
  use pre-bound metric handles and O(1) lookups (no get-or-create
  registry calls, no O(N) container scans per request).

The numeric era adds a value-domain dataflow index (:mod:`numflow`:
log-prob / linear-prob / count / float lattice inferred from
provenance, with interprocedural return summaries) and four passes over
it:

- **P11** ``log-domain-confusion`` — log-probabilities used on the
  linear scale: mixed arithmetic, ``sum()`` over logs, log-vs-linear
  comparisons, unclamped ``exp()`` of full-magnitude logs.
- **P12** ``probability-range-escape`` — exp-derived probabilities
  returned from ``core``/``sim``/``analysis`` without a clip or a
  ``# domain: linear <reason>`` validated-boundary annotation.
- **P13** ``numeric-stability`` — shapes with strictly better stable
  forms: ``log(1-x)`` -> ``log1p``, ``log(sum(exp))`` -> ``logsumexp``,
  lgamma differences outside the combinatorics module, unguarded
  division by possibly-zero counts.
- **P14** ``vectorization-readiness`` — the ratcheted inventory of
  scalar accumulation loops in ``core/`` the ROADMAP vectorization
  item must burn down (committed ``.reprolint-p14-baseline.json``).

See ``docs/static-analysis.md`` for the full catalogue and the
baseline/ratchet workflow, and ``docs/import-graph.md`` for the rendered
layering graph.
"""

from __future__ import annotations

from .baseline import (
    Baseline,
    BaselineComparison,
    compare,
    load_baseline,
    write_baseline,
)
from .context import ModuleInfo, ProgramContext
from .graph import LAYER_CONTRACT, ImportEdge, render_dot, render_graph_json

# Importing the pass modules registers every project rule (P1-P14).
from . import api as _api  # noqa: F401
from . import concurrency as _concurrency  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import executor_safety as _executor_safety  # noqa: F401
from . import graph as _graph  # noqa: F401
from . import hotpath as _hotpath  # noqa: F401
from . import numeric as _numeric  # noqa: F401
from . import races as _races  # noqa: F401
from . import rng as _rng  # noqa: F401
from . import vectorize as _vectorize  # noqa: F401

__all__ = [
    "Baseline",
    "BaselineComparison",
    "ImportEdge",
    "LAYER_CONTRACT",
    "ModuleInfo",
    "ProgramContext",
    "compare",
    "load_baseline",
    "render_dot",
    "render_graph_json",
    "write_baseline",
]
