"""Approximate whole-program call graph for the P-series passes.

Python resists exact static call resolution, so this graph is a
deliberate over-approximation tuned for the two analyses that share it:

- bare-name calls resolve through the module's import map (following
  ``__init__`` re-exports a bounded number of hops), then module-level
  definitions;
- ``self.method()`` resolves inside the enclosing class;
- other attribute calls fall back to *every* project function or method
  with that name.

Over-approximation is the safe direction for both clients: the
determinism pass (P3) wants "could this function's iteration order ever
reach the event queue?" and the RNG pass (P2) wants "could this call
chain ever construct an entropy-seeded Generator?" — missing an edge
hides a bug, while a spurious edge at worst asks for a justification
comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .context import ModuleInfo, ProgramContext

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "build_call_graph"]

_MAX_REEXPORT_HOPS = 5


@dataclass
class FunctionInfo:
    """One function or method definition in the program."""

    qualname: str  # "repro.cloudsim.coordinator.Coordinator._sweep"
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_method: bool

    def param_default(self, param: str) -> ast.AST | None | bool:
        """Default node for ``param``: the AST node, ``None`` when the
        parameter is required, ``False`` when no such parameter exists."""
        args = self.node.args
        positional = list(args.posonlyargs) + list(args.args)
        defaults = list(args.defaults)
        # defaults align with the tail of the positional list
        pad: list[ast.AST | None] = [None] * (
            len(positional) - len(defaults)
        )
        for arg, default in zip(positional, pad + defaults):
            if arg.arg == param:
                return default
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == param:
                return kw_default
        return False

    def positional_params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        if self.is_method and names:
            names = names[1:]  # receiver
        return names


@dataclass(frozen=True)
class CallSite:
    """One resolved call: who calls whom, from where."""

    caller: str  # qualname of the enclosing function ("<module>" at top)
    node_line: int
    node_col: int
    targets: tuple[str, ...]  # candidate callee qualnames
    call: ast.Call = field(compare=False, hash=False)


class CallGraph:
    """Function index plus resolved call edges."""

    def __init__(self, program: ProgramContext) -> None:
        self.program = program
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[str]] = {}
        self.class_methods: dict[tuple[str, str], dict[str, str]] = {}
        self.module_defs: dict[str, dict[str, str]] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.callers: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def calls_in(self, qualname: str) -> list[CallSite]:
        return self.calls.get(qualname, [])

    def callers_of(self, qualname: str) -> set[str]:
        return self.callers.get(qualname, set())

    def transitive_callers(self, seeds: set[str]) -> set[str]:
        """``seeds`` plus every function that can reach one of them."""
        reached = set(seeds)
        frontier = list(seeds)
        while frontier:
            current = frontier.pop()
            for caller in self.callers_of(current):
                if caller not in reached:
                    reached.add(caller)
                    frontier.append(caller)
        return reached


def build_call_graph(program: ProgramContext) -> CallGraph:
    graph = CallGraph(program)
    for info in program.project_modules():
        _index_module(graph, info)
    for info in program.project_modules():
        _resolve_module_calls(graph, info)
    return graph


# ----------------------------------------------------------------------
# indexing
# ----------------------------------------------------------------------
def _index_module(graph: CallGraph, info: ModuleInfo) -> None:
    defs: dict[str, str] = {}
    for node in info.ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{info.name}.{node.name}"
            fn = FunctionInfo(
                qualname=qualname,
                module=info.name,
                cls=None,
                name=node.name,
                node=node,
                is_method=False,
            )
            graph.functions[qualname] = fn
            graph.by_name.setdefault(node.name, []).append(qualname)
            defs[node.name] = qualname
        elif isinstance(node, ast.ClassDef):
            defs[node.name] = f"{info.name}.{node.name}"
            methods: dict[str, str] = {}
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qualname = f"{info.name}.{node.name}.{item.name}"
                    is_static = any(
                        isinstance(d, ast.Name) and d.id == "staticmethod"
                        for d in item.decorator_list
                    )
                    fn = FunctionInfo(
                        qualname=qualname,
                        module=info.name,
                        cls=node.name,
                        name=item.name,
                        node=item,
                        is_method=not is_static,
                    )
                    graph.functions[qualname] = fn
                    graph.by_name.setdefault(item.name, []).append(qualname)
                    methods[item.name] = qualname
            graph.class_methods[(info.name, node.name)] = methods
    graph.module_defs[info.name] = defs


def _import_map(info: ModuleInfo) -> dict[str, tuple[str, str | None]]:
    """Local name -> (module target, original name or None for modules)."""
    mapping: dict[str, tuple[str, str | None]] = {}
    for record in info.imports:
        if record.names:
            for local, original in record.bindings():
                mapping[local] = (record.target, original)
        elif record.module_alias is not None:
            # ``import a.b`` binds ``a`` (to package a); ``import a.b as
            # x`` binds x straight to a.b.
            target = record.target
            if record.module_alias == record.target.split(".", 1)[0]:
                target = record.module_alias
            mapping.setdefault(record.module_alias, (target, None))
    return mapping


def _resolve_export(
    graph: CallGraph, module: str, name: str, hops: int = 0
) -> str | None:
    """Resolve ``from module import name`` to a defined qualname.

    Follows ``__init__`` re-exports (``from .greedy import greedy_sizes``)
    up to a bounded depth, and falls back to the submodule
    ``module.name`` when that is what the import actually binds.
    """
    if hops > _MAX_REEXPORT_HOPS:
        return None
    defs = graph.module_defs.get(module)
    if defs and name in defs:
        return defs[name]
    submodule = f"{module}.{name}"
    if submodule in graph.program.modules:
        return submodule
    info = graph.program.modules.get(module)
    if info is not None:
        for record in info.imports:
            if name in record.names:
                resolved = _resolve_export(
                    graph, record.target, name, hops + 1
                )
                if resolved is not None:
                    return resolved
    return None


# ----------------------------------------------------------------------
# call resolution
# ----------------------------------------------------------------------
def _resolve_module_calls(graph: CallGraph, info: ModuleInfo) -> None:
    imports = _import_map(info)

    def record(caller: str, call: ast.Call, targets: tuple[str, ...]) -> None:
        site = CallSite(
            caller=caller,
            node_line=call.lineno,
            node_col=call.col_offset,
            targets=targets,
            call=call,
        )
        graph.calls.setdefault(caller, []).append(site)
        for target in targets:
            graph.callers.setdefault(target, set()).add(caller)

    for fn_qualname, fn_node, cls_name in _function_scopes(info):
        for call in _calls_in_body(fn_node):
            targets = _resolve_call(
                graph, info, imports, call, cls_name
            )
            record(fn_qualname, call, tuple(sorted(targets)))


def _function_scopes(
    info: ModuleInfo,
) -> Iterator[tuple[str, ast.AST, str | None]]:
    """Each function scope plus a synthetic ``<module>`` scope."""
    yield f"{info.name}.<module>", _ModuleScope(info.ctx.tree), None
    for node in info.ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{info.name}.{node.name}", node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield (
                        f"{info.name}.{node.name}.{item.name}",
                        item,
                        node.name,
                    )


class _ModuleScope:
    """Module top-level statements, minus function/class bodies."""

    def __init__(self, tree: ast.Module) -> None:
        self.body = [
            node
            for node in tree.body
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]


def _calls_in_body(scope: ast.AST | _ModuleScope) -> Iterator[ast.Call]:
    if isinstance(scope, _ModuleScope):
        for stmt in scope.body:
            yield from (
                n for n in ast.walk(stmt) if isinstance(n, ast.Call)
            )
        return
    # Skip nested function definitions: they get their own scope only if
    # top-level; nested closures stay attributed to the enclosing
    # function, which is what reachability wants.
    yield from (n for n in ast.walk(scope) if isinstance(n, ast.Call))


def _resolve_call(
    graph: CallGraph,
    info: ModuleInfo,
    imports: dict[str, tuple[str, str | None]],
    call: ast.Call,
    cls_name: str | None,
) -> set[str]:
    func = call.func
    targets: set[str] = set()
    if isinstance(func, ast.Name):
        name = func.id
        if name in imports:
            module, original = imports[name]
            if original is not None:
                resolved = _resolve_export(graph, module, original)
                if resolved is not None:
                    targets |= _expand_class(graph, resolved)
        elif name in graph.module_defs.get(info.name, {}):
            targets |= _expand_class(
                graph, graph.module_defs[info.name][name]
            )
    elif isinstance(func, ast.Attribute):
        # self.method() inside a class
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and cls_name is not None
        ):
            methods = graph.class_methods.get((info.name, cls_name), {})
            if func.attr in methods:
                return {methods[func.attr]}
        # module-alias dotted call: mod.func() / pkg.sub.func()
        dotted = _dotted_parts(func)
        if dotted is not None:
            head, *rest = dotted
            if head in imports and imports[head][1] is None:
                module = imports[head][0]
                if rest:
                    *middle, last = rest
                    target_mod = ".".join([module, *middle])
                    resolved = _resolve_export(graph, target_mod, last)
                    if resolved is not None:
                        return _expand_class(graph, resolved)
        # fallback: every project function/method with this bare name
        for qualname in graph.by_name.get(func.attr, []):
            targets |= _expand_class(graph, qualname)
    return targets


def _dotted_parts(node: ast.Attribute) -> list[str] | None:
    parts: list[str] = [node.attr]
    value: ast.AST = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
        return list(reversed(parts))
    return None


def _expand_class(graph: CallGraph, qualname: str) -> set[str]:
    """A call to a class is a call to its constructor chain."""
    if qualname in graph.functions:
        return {qualname}
    # qualname may be "module.Class": route to __init__/__post_init__.
    module, _, cls = qualname.rpartition(".")
    methods = graph.class_methods.get((module, cls))
    if methods:
        chain = {
            methods[name]
            for name in ("__init__", "__post_init__")
            if name in methods
        }
        if chain:
            return chain
    return set()
