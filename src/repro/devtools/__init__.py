"""repro.devtools — development tooling for the reproduction codebase.

The flagship component is **reprolint**, a domain-aware static-analysis
pass (``repro-lint`` on the command line) that machine-checks the
invariants the paper's math demands but Python itself cannot enforce:

- every stochastic path threads an explicitly seeded
  ``numpy.random.Generator`` (rule R1) so Figures 3-12 stay reproducible;
- hypergeometric probabilities stay in log-space (rule R2) because the
  binomial coefficients at paper scale (``N`` up to 150,000) overflow any
  fixed-width float — see :mod:`repro.core.combinatorics`;
- probability code never does unguarded float equality (rule R3);
- public APIs keep the paper's symbol vocabulary (rule R7) and the type
  annotations ``mypy --strict`` needs (rules R5/R6).

The per-file R-series is complemented by whole-program project rules
(P1-P14, ``repro-lint --project``) living in :mod:`.program`: import
layering contracts, interprocedural RNG provenance, determinism
dataflow into the DES event queue, wall-clock bans, dead-export
detection, the concurrency-era passes (event-loop blocking, orphan
coroutines, executor pickling safety, shared-state races, hot-path
discipline), and the numeric-era passes (log/linear domain confusion,
probability-range escapes, stability anti-patterns, and the
vectorization-readiness ratchet, over the :mod:`.program.numflow`
value-domain index with its ``# domain: <log|linear> <reason>``
annotation) — with committed baseline/ratchet files
(``.reprolint-baseline.json``, ``.reprolint-p14-baseline.json``), an
incremental mode (``--changed [REF]``), an import-graph export
(``--graph``), and a SARIF 2.1.0 reporter (``--format sarif``) for
code scanning.

See ``docs/static-analysis.md`` for the full rule catalogue and
suppression syntax, and ``docs/import-graph.md`` for the layering
contract.
"""

from __future__ import annotations

from .context import FileContext
from .registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    get_project_rule,
    get_rule,
    project_rule,
    resolve_rule_sets,
    resolve_rules,
    rule,
)
from .reporters import render_json, render_sarif, render_text
from .runner import LintReport, lint_paths, lint_project
from .violations import Violation

# Importing the rule modules registers every built-in rule: the R-series
# (per-file) and, via the program subpackage, the P-series (whole-tree).
from . import rules as _rules  # noqa: F401
from . import program as _program  # noqa: F401

__all__ = [
    "FileContext",
    "LintReport",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_project_rules",
    "all_rules",
    "get_project_rule",
    "get_rule",
    "lint_paths",
    "lint_project",
    "project_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_rule_sets",
    "resolve_rules",
    "rule",
]
