"""repro.devtools — development tooling for the reproduction codebase.

The flagship component is **reprolint**, a domain-aware static-analysis
pass (``repro-lint`` on the command line) that machine-checks the
invariants the paper's math demands but Python itself cannot enforce:

- every stochastic path threads an explicitly seeded
  ``numpy.random.Generator`` (rule R1) so Figures 3-12 stay reproducible;
- hypergeometric probabilities stay in log-space (rule R2) because the
  binomial coefficients at paper scale (``N`` up to 150,000) overflow any
  fixed-width float — see :mod:`repro.core.combinatorics`;
- probability code never does unguarded float equality (rule R3);
- public APIs keep the paper's symbol vocabulary (rule R7) and the type
  annotations ``mypy --strict`` needs (rules R5/R6).

See ``docs/static-analysis.md`` for the full rule catalogue and
suppression syntax.
"""

from __future__ import annotations

from .context import FileContext
from .registry import Rule, all_rules, get_rule, resolve_rules, rule
from .reporters import render_json, render_text
from .runner import LintReport, lint_paths
from .violations import Violation

# Importing the rule module registers every built-in rule.
from . import rules as _rules  # noqa: F401

__all__ = [
    "FileContext",
    "LintReport",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "render_json",
    "render_text",
    "resolve_rules",
    "rule",
]
