"""Machine-readable export of experiment results.

``python -m repro.experiments fig8 --json out.json`` writes the same data
the tables show, as JSON, so plots can be regenerated with any external
tool.  The converter handles the library's result types generically:
dataclasses become objects, :class:`~repro.sim.stats.SampleSummary`
becomes ``{mean, half_width, n, confidence}``, numpy scalars become
numbers.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np

from ..sim.stats import SampleSummary

__all__ = ["to_jsonable", "dump_json"]

# Fields that would bloat the export without adding plot-relevant data.
_SKIPPED_FIELDS = {"result", "runs", "samples", "per_client_times"}


def to_jsonable(value: Any) -> Any:
    """Recursively convert a result object into JSON-encodable data."""
    if isinstance(value, SampleSummary):
        return {
            "mean": value.mean,
            "half_width": value.half_width,
            "n": value.n,
            "confidence": value.confidence,
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if field.name not in _SKIPPED_FIELDS
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, float) and value != value:  # NaN
        return None
    return value


def dump_json(results: dict[str, Any], path: str) -> None:
    """Write ``{experiment_name: rows}`` to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_jsonable(results), handle, indent=2, sort_keys=True)
        handle.write("\n")
