"""Figure 12 — client migration time between two replica servers.

Paper setting: up to 60 PlanetLab Firefox clients on a 246 KB page served
from EC2; 15 repetitions per point, 95% confidence intervals.  Reported
results: all 60 clients re-assigned in < 5 s; per-client mean between
~1 and ~2.5 s; both curves grow with the client count, the total far
faster than the mean (single-threaded serialized pushes).

This driver runs the calibrated emulation in
:mod:`repro.cloudsim.migration` (see DESIGN.md §5.3 for the substitution
rationale).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloudsim.migration import MigrationModel, simulate_migration
from ..sim.stats import SampleSummary, summarize
from .tables import render_table

__all__ = ["Fig12Row", "run_fig12", "render_fig12", "FIG12_CLIENT_COUNTS"]

FIG12_CLIENT_COUNTS: tuple[int, ...] = (10, 20, 30, 40, 50, 60)
FIG12_REPEATS = 15


@dataclass(frozen=True)
class Fig12Row:
    """One Figure 12 data point (both curves)."""

    n_clients: int
    total_time: SampleSummary  # upper curve: all clients migrated
    per_client: SampleSummary  # lower curve: mean per-client time


def run_fig12(
    client_counts: tuple[int, ...] = FIG12_CLIENT_COUNTS,
    repetitions: int = FIG12_REPEATS,
    seed: int = 0,
    model: MigrationModel | None = None,
) -> list[Fig12Row]:
    """Measure migration time for each client count."""
    rows = []
    for index, n_clients in enumerate(client_counts):
        samples = simulate_migration(
            n_clients, repetitions=repetitions, seed=seed + index,
            model=model,
        )
        rows.append(
            Fig12Row(
                n_clients=n_clients,
                total_time=summarize(
                    [s.total_time for s in samples], confidence=0.95
                ),
                per_client=summarize(
                    [s.per_client_mean for s in samples], confidence=0.95
                ),
            )
        )
    return rows


def render_fig12(rows: list[Fig12Row]) -> str:
    """ASCII rendition of Figure 12."""
    table = render_table(
        [
            {
                "clients": row.n_clients,
                "all clients (s)": row.total_time.format(2),
                "per client (s)": row.per_client.format(2),
            }
            for row in rows
        ],
        title=(
            "Figure 12 — client migration time between two replicas "
            "(paper: 60 clients in < 5 s; per-client ~1-2.5 s)"
        ),
    )
    last = rows[-1]
    return table + (
        f"\n\nat {last.n_clients} clients: total {last.total_time.mean:.2f} s"
        f" (paper: < 5 s), per-client {last.per_client.mean:.2f} s"
    )


def chart_fig12(rows: list[Fig12Row]) -> str:
    """ASCII line chart of both Figure 12 curves."""
    from .plots import Series, ascii_chart

    counts = [row.n_clients for row in rows]
    return ascii_chart(
        [
            Series("all clients",
                   counts, [row.total_time.mean for row in rows]),
            Series("per client",
                   counts, [row.per_client.mean for row in rows]),
        ],
        title="Figure 12 — client migration time",
        x_label="concurrent clients",
        y_label="seconds",
    )


def main() -> None:
    print(render_fig12(run_fig12()))


if __name__ == "__main__":
    main()
