"""Figure 7 — accuracy of the MLE attack-scale estimator.

Paper setting: 10,000 clients uniformly assigned to 100 shuffling
replicas; the real persistent-bot count sweeps 10..350; each data point is
the mean of 40 repeated runs with a 99% confidence interval.  The paper's
observations:

- the estimate tracks the real bot count closely while some replicas stay
  bot-free, and
- once (nearly) all replicas are attacked, the likelihood becomes monotone
  in ``M`` and the estimate shoots to its upper bound — the regime
  characterized by Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import EstimateRequest, estimate
from ..core.even import even_sizes
from ..sim.stats import SampleSummary, summarize
from .tables import render_table

__all__ = ["Fig7Row", "run_fig7", "render_fig7"]

FIG7_CLIENTS = 10_000
FIG7_REPLICAS = 100
FIG7_BOT_COUNTS: tuple[int, ...] = (
    10, 20, 50, 80, 100, 150, 200, 250, 300, 350,
)
FIG7_REPEATS = 40


@dataclass(frozen=True)
class Fig7Row:
    """Mean estimate and attack coverage for one real bot count."""

    real_bots: int
    estimate: SampleSummary
    attacked_fraction: SampleSummary
    degenerate_runs: int

    @property
    def relative_error(self) -> float:
        return (self.estimate.mean - self.real_bots) / self.real_bots


def _simulate_observation(
    n_clients: int,
    n_bots: int,
    n_replicas: int,
    rng: np.random.Generator,
) -> tuple[int, int]:
    """One uniform assignment: returns (attacked count, attacked clients)."""
    sizes = np.asarray(even_sizes(n_clients, n_replicas), dtype=np.int64)
    bots_per_replica = rng.multivariate_hypergeometric(sizes, n_bots)
    attacked = bots_per_replica > 0
    return int(attacked.sum()), int(sizes[attacked].sum())


def run_fig7(
    n_clients: int = FIG7_CLIENTS,
    n_replicas: int = FIG7_REPLICAS,
    bot_counts: tuple[int, ...] = FIG7_BOT_COUNTS,
    repeats: int = FIG7_REPEATS,
    seed: int = 0,
) -> list[Fig7Row]:
    """Estimate the bot count repeatedly for each real bot population."""
    rows = []
    seed_seq = np.random.SeedSequence(seed)
    for real_bots, child in zip(
        bot_counts, seed_seq.spawn(len(bot_counts))
    ):
        rng = np.random.default_rng(child)
        estimates = []
        fractions = []
        degenerate = 0
        for _ in range(repeats):
            n_attacked, attacked_clients = _simulate_observation(
                n_clients, real_bots, n_replicas, rng
            )
            result = estimate(
                EstimateRequest(
                    n_attacked=n_attacked,
                    n_replicas=n_replicas,
                    upper_bound=max(attacked_clients, n_attacked),
                    method="mle",
                )
            )
            estimates.append(result.m_hat)
            fractions.append(n_attacked / n_replicas)
            degenerate += int(result.degenerate)
        rows.append(
            Fig7Row(
                real_bots=real_bots,
                estimate=summarize(estimates, confidence=0.99),
                attacked_fraction=summarize(fractions, confidence=0.99),
                degenerate_runs=degenerate,
            )
        )
    return rows


def render_fig7(rows: list[Fig7Row]) -> str:
    """ASCII rendition of Figure 7."""
    return render_table(
        [
            {
                "real bots": row.real_bots,
                "estimated": row.estimate.format(1),
                "rel.err": row.relative_error,
                "attacked %": 100 * row.attacked_fraction.mean,
                "degenerate runs": row.degenerate_runs,
            }
            for row in rows
        ],
        title=(
            "Figure 7 — MLE bot-count estimation "
            f"({FIG7_CLIENTS} clients, {FIG7_REPLICAS} replicas; paper: "
            "accurate unless nearly all replicas attacked)"
        ),
    )


def main() -> None:
    print(render_fig7(run_fig7()))


if __name__ == "__main__":
    main()
