"""One driver per paper table/figure.

Run from the command line::

    python -m repro.experiments fig3
    python -m repro.experiments fig8 --quick
    python -m repro.experiments all --quick

or programmatically::

    from repro.experiments import fig3
    rows = fig3.run_fig3()

Drivers: ``fig3`` (greedy vs DP), ``fig4`` (greedy vs even), ``fig5``
(DP runtime), ``fig6`` (greedy runtime), ``fig7`` (MLE accuracy),
``fig8`` (shuffles vs bots), ``fig9`` (shuffles vs replicas), ``fig10``
(cumulative saving), ``fig12`` (migration latency), ``headline``
(the abstract's 60-shuffle claim).
"""

from __future__ import annotations

from . import (  # noqa: F401  (re-exported driver modules)
    ablations,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig12,
    headline,
)
from .runner import EXPERIMENTS, main

__all__ = [
    "EXPERIMENTS",
    "ablations",
    "fig10",
    "fig12",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "headline",
    "main",
]
