"""Figure 6 — running time of the greedy algorithm.

Paper setting: 1000 clients, bots ∈ {50..500}, replicas ∈ {50, 100, 150,
200}; the greedy planner needs only a few milliseconds per plan — the
property that makes it the runtime algorithm for live shuffling decisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.greedy import greedy_sizes
from .fig3 import FIG3_BOT_COUNTS, FIG3_CLIENTS, FIG3_REPLICA_COUNTS
from .tables import render_table

__all__ = ["Fig6Row", "run_fig6", "render_fig6"]


@dataclass(frozen=True)
class Fig6Row:
    """Wall-clock of one greedy invocation (best of ``repeats``)."""

    n_clients: int
    n_bots: int
    n_replicas: int
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1000.0


def run_fig6(
    n_clients: int = FIG3_CLIENTS,
    bot_counts: tuple[int, ...] = FIG3_BOT_COUNTS,
    replica_counts: tuple[int, ...] = FIG3_REPLICA_COUNTS,
    repeats: int = 5,
) -> list[Fig6Row]:
    """Time the greedy planner across the Figure 3 grid."""
    rows = []
    for n_replicas in replica_counts:
        for n_bots in bot_counts:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                greedy_sizes(n_clients, n_bots, n_replicas)
                best = min(best, time.perf_counter() - start)
            rows.append(
                Fig6Row(
                    n_clients=n_clients,
                    n_bots=n_bots,
                    n_replicas=n_replicas,
                    seconds=best,
                )
            )
    return rows


def render_fig6(rows: list[Fig6Row]) -> str:
    """ASCII rendition of Figure 6."""
    table = render_table(
        [
            {
                "replicas": row.n_replicas,
                "bots": row.n_bots,
                "time (ms)": row.milliseconds,
            }
            for row in rows
        ],
        title=(
            "Figure 6 — greedy running time, 1000 clients "
            "(paper: 1-4 ms in Matlab)"
        ),
    )
    worst = max(row.milliseconds for row in rows)
    return table + f"\n\nworst-case greedy time: {worst:.2f} ms"


def main() -> None:
    print(render_fig6(run_fig6()))


if __name__ == "__main__":
    main()
