"""Terminal line charts for the experiment drivers.

matplotlib is not a dependency of this reproduction, but the paper's
results are curves; this module renders multi-series line charts as plain
text so ``python -m repro.experiments fig8 --chart`` can show the shape of
a figure, not just its table.

The renderer is deliberately simple: linear scales, one glyph per series,
nearest-cell rasterization, a legend, and axis labels.  It is pure
string-building, fully unit-tested, and good enough to eyeball a
crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "ascii_chart"]

_GLYPHS = "*o+x#@%&"


@dataclass(frozen=True)
class Series:
    """One named line on the chart."""

    label: str
    xs: Sequence[float]
    ys: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: {len(self.xs)} xs vs "
                f"{len(self.ys)} ys"
            )
        if not self.xs:
            raise ValueError(f"series {self.label!r} is empty")


def ascii_chart(
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render series as an ASCII line chart.

    Args:
        series: 1-8 named series (one glyph each).
        width / height: plot-area size in character cells.
        title: optional heading.
        x_label / y_label: axis captions.
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")
    if width < 8 or height < 4:
        raise ValueError("chart too small to be legible")

    x_min = min(min(s.xs) for s in series)
    x_max = max(max(s.xs) for s in series)
    y_min = min(min(s.ys) for s in series)
    y_max = max(max(s.ys) for s in series)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return height - 1 - row, col

    for s, glyph in zip(series, _GLYPHS):
        # Draw line segments by sampling between consecutive points.
        points = sorted(zip(s.xs, s.ys))
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            steps = max(
                2, abs(cell(x1, y1)[1] - cell(x0, y0)[1]) * 2
            )
            for step in range(steps + 1):
                t = step / steps
                row, col = cell(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                if grid[row][col] == " ":
                    grid[row][col] = glyph
        for x, y in points:  # markers win over line pixels
            row, col = cell(x, y)
            grid[row][col] = glyph

    y_lo = _fmt(y_min)
    y_hi = _fmt(y_max)
    margin = max(len(y_lo), len(y_hi)) + 1
    lines: list[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            prefix = y_hi.rjust(margin - 1) + "|"
        elif index == height - 1:
            prefix = y_lo.rjust(margin - 1) + "|"
        else:
            prefix = " " * (margin - 1) + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * (margin - 1) + "+" + "-" * width)
    x_axis = (
        " " * margin
        + _fmt(x_min)
        + _fmt(x_max).rjust(width - len(_fmt(x_min)))
    )
    lines.append(x_axis)
    if x_label:
        lines.append(" " * margin + x_label.center(width))
    legend = "   ".join(
        f"{glyph}={s.label}" for s, glyph in zip(series, _GLYPHS)
    )
    lines.append((y_label + "  " if y_label else "") + legend)
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:,.0f}"
    return f"{value:.2f}"
