"""Figure 9 — shuffles to save 80% / 95% of benign vs. replica count.

Paper setting: 10^5 persistent bots; benign populations 10K and 50K;
shuffling replicas sweep 900..2000; 30 repetitions, 99% CI.  Claim: the
shuffle count *drops steadily* as replica servers are added — the paper's
argument that cloud elasticity buys mitigation speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.grids import run_scenario_grid
from ..sim.scenarios import FIG8_BENIGN_COUNTS, FIG9_REPLICA_COUNTS
from ..sim.shuffle_sim import ScenarioResult, ShuffleScenario
from ..sim.stats import SampleSummary
from .tables import render_table

__all__ = ["Fig9Row", "run_fig9", "render_fig9"]

FIG9_BOTS = 100_000


@dataclass(frozen=True)
class Fig9Row:
    """One Figure 9 data point."""

    benign: int
    n_replicas: int
    target: float
    shuffles: SampleSummary
    result: ScenarioResult


def run_fig9(
    replica_counts: tuple[int, ...] = FIG9_REPLICA_COUNTS,
    benign_counts: tuple[int, ...] = FIG8_BENIGN_COUNTS,
    targets: tuple[float, ...] = (0.8, 0.95),
    repetitions: int = 30,
    seed: int = 0,
    jobs: int = 1,
) -> list[Fig9Row]:
    """Run the Figure 9 grid (``jobs`` fans out; numbers are identical
    to the serial run for any job count)."""
    scenarios = [
        ShuffleScenario(
            benign=benign,
            bots=FIG9_BOTS,
            n_replicas=n_replicas,
            target_fraction=target,
        )
        for benign in benign_counts
        for target in targets
        for n_replicas in replica_counts
    ]
    results = run_scenario_grid(
        scenarios,
        repetitions=repetitions,
        seed=seed,
        spawn_seeds=False,
        workers=jobs,
    )
    return [
        Fig9Row(
            benign=result.scenario.benign,
            n_replicas=result.scenario.n_replicas,
            target=result.scenario.target_fraction,
            shuffles=result.shuffles,
            result=result,
        )
        for result in results
    ]


def render_fig9(rows: list[Fig9Row]) -> str:
    """ASCII rendition of Figure 9."""
    return render_table(
        [
            {
                "benign": row.benign,
                "target": f"{row.target:.0%}",
                "replicas": row.n_replicas,
                "shuffles": row.shuffles.format(1),
            }
            for row in rows
        ],
        title=(
            "Figure 9 — shuffles vs shuffling-replica count, 100K bots "
            "(paper: adding replicas steadily reduces shuffles)"
        ),
    )


def chart_fig9(rows: list[Fig9Row]) -> str:
    """ASCII line chart of the four Figure 9 curves."""
    from .plots import Series, ascii_chart

    series = []
    for benign in sorted({row.benign for row in rows}):
        for target in sorted({row.target for row in rows}):
            pts = [
                (row.n_replicas, row.shuffles.mean)
                for row in rows
                if row.benign == benign and row.target == target
            ]
            if len(pts) >= 2:
                series.append(
                    Series(
                        f"{benign // 1000}K/{target:.0%}",
                        [p[0] for p in pts],
                        [p[1] for p in pts],
                    )
                )
    return ascii_chart(
        series,
        title="Figure 9 — shuffles vs shuffling replicas (100K bots)",
        x_label="shuffling replicas",
        y_label="shuffles",
    )


def main() -> None:
    rows = run_fig9(
        replica_counts=(900, 1200, 1600, 2000), repetitions=5
    )
    print(render_fig9(rows))


if __name__ == "__main__":
    main()
