"""Ablation experiments beyond the paper's figures.

Four design questions DESIGN.md calls out, each answerable inside this
reproduction:

1. **Planner** — how much does plan quality compound over a multi-round
   defense (greedy vs. the even baseline)?
2. **Estimator** — what is the shuffle premium for *not* knowing the bot
   count (oracle vs. MLE vs. moment)?
3. **Theorem 1 growth** — what does adaptive replica-pool growth buy in
   the saturated regime?
4. **Expansion** — how do shuffling's resources compare against the pure
   server-expansion dilution strategy at the same protection target (the
   paper's intro claim and stated future-work cost study)?

Run via ``python -m repro.experiments ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.cost import DefenseCost, compare_costs
from ..analysis.theory import max_estimable_bots
from ..core.shuffler import ShuffleEngine
from ..runtime.grids import run_scenario_grid
from ..sim.shuffle_sim import ScenarioResult, ShuffleScenario
from .tables import render_table

__all__ = ["AblationResults", "run_ablations", "render_ablations"]


@dataclass(frozen=True)
class AblationResults:
    """Everything the ablation suite measures."""

    planners: dict[str, ScenarioResult]
    estimators: dict[str, ScenarioResult]
    growth: dict[str, tuple[int, int, float]]  # pool, rounds, saved
    costs: tuple[DefenseCost, DefenseCost]


def _planner_ablation(
    repetitions: int, jobs: int = 1
) -> dict[str, ScenarioResult]:
    scenario = dict(
        benign=2_000, bots=800, n_replicas=100, target_fraction=0.8,
        preload_bots=True, max_rounds=3_000,
    )
    planners = ("greedy", "even")
    results = run_scenario_grid(
        [ShuffleScenario(planner=planner, **scenario)
         for planner in planners],
        repetitions=repetitions,
        seed=11,
        spawn_seeds=False,
        workers=jobs,
    )
    return dict(zip(planners, results))


def _estimator_ablation(
    repetitions: int, jobs: int = 1
) -> dict[str, ScenarioResult]:
    scenario = dict(
        benign=2_000, bots=500, n_replicas=100, target_fraction=0.8,
        preload_bots=True, max_rounds=2_000,
    )
    estimators = ("oracle", "mle", "moment")
    results = run_scenario_grid(
        [ShuffleScenario(estimator=estimator, **scenario)
         for estimator in estimators],
        repetitions=repetitions,
        seed=13,
        spawn_seeds=False,
        workers=jobs,
    )
    return dict(zip(estimators, results))


def _growth_ablation() -> dict[str, tuple[int, int, float]]:
    outcomes = {}
    for label, adaptive in (("fixed", False), ("adaptive", True)):
        engine = ShuffleEngine(
            n_replicas=8,
            planner="greedy",
            rng=np.random.default_rng(21),
            adaptive_growth=adaptive,
            max_replicas=4_096,
        )
        state = engine.run(
            benign=1_000, bots=400, target_fraction=0.8, max_rounds=200
        )
        outcomes[label] = (
            engine.n_replicas,
            len(state.rounds),
            state.saved_fraction,
        )
    return outcomes


def run_ablations(repetitions: int = 10, jobs: int = 1) -> AblationResults:
    """Run the whole ablation suite (``jobs`` fans out the sim grids)."""
    return AblationResults(
        planners=_planner_ablation(repetitions, jobs=jobs),
        estimators=_estimator_ablation(repetitions, jobs=jobs),
        growth=_growth_ablation(),
        costs=compare_costs(
            benign=50_000,
            bots=100_000,
            target_fraction=0.8,
            shuffles_needed=67,
            n_replicas=1_000,
        ),
    )


def render_ablations(results: AblationResults) -> str:
    """All four ablation tables as one report."""
    sections = []
    sections.append(render_table(
        [
            {
                "planner": planner,
                "shuffles": result.shuffles.format(1),
                "saved": result.saved_fraction.format(3),
            }
            for planner, result in results.planners.items()
        ],
        title="Ablation 1 — planner (2K benign, 800 preloaded bots, "
              "100 replicas, 80% target)",
    ))
    sections.append(render_table(
        [
            {
                "estimator": estimator,
                "shuffles": result.shuffles.format(1),
                "saved": result.saved_fraction.format(3),
            }
            for estimator, result in results.estimators.items()
        ],
        title="Ablation 2 — bot-count knowledge (2K benign, 500 "
              "preloaded bots, 100 replicas)",
    ))
    sections.append(render_table(
        [
            {
                "policy": label,
                "final pool": pool,
                "rounds": rounds,
                "saved": saved,
            }
            for label, (pool, rounds, saved) in results.growth.items()
        ],
        title=(
            "Ablation 3 — Theorem 1 adaptive growth (1K benign, 400 "
            f"bots, start pool 8; saturation above "
            f"~{max_estimable_bots(8):.0f} bots)"
        ),
    ))
    shuffling, expansion = results.costs
    sections.append(render_table(
        [
            {
                "strategy": cost.strategy,
                "peak instances": cost.peak_instances,
                "instance-hours": cost.instance_hours,
                "launches": cost.launches,
                "dollars": cost.dollars,
            }
            for cost in (shuffling, expansion)
        ],
        title="Ablation 4 — shuffling vs pure expansion at the headline "
              "scale (80% of 50K benign vs 100K bots)",
    ))
    return "\n\n".join(sections)


def main() -> None:
    print(render_ablations(run_ablations(repetitions=3)))


if __name__ == "__main__":
    main()
