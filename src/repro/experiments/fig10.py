"""Figure 10 — cumulative saved benign fraction vs. number of shuffles.

Paper setting: 10^5 persistent bots, benign populations 10K and 50K, 1000
shuffling replicas.  Claim: early shuffles save far more benign clients
than later ones, because every saved benign client increases the bot share
of the remaining population (diminishing returns).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.grids import run_scenario_grid
from ..sim.scenarios import fig10_scenarios
from ..sim.shuffle_sim import ScenarioResult, cumulative_saved_curve
from ..sim.stats import SampleSummary
from .tables import render_table

__all__ = ["Fig10Curve", "run_fig10", "render_fig10", "FIG10_FRACTIONS"]

# The paper's x-axis checkpoints (cumulative saved share).
FIG10_FRACTIONS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
)


@dataclass(frozen=True)
class Fig10Curve:
    """Shuffles needed to reach each saved-fraction checkpoint."""

    benign: int
    fractions: tuple[float, ...]
    shuffles: tuple[SampleSummary, ...]
    result: ScenarioResult

    def marginal_costs(self) -> list[float]:
        """Extra shuffles per checkpoint step (should increase)."""
        means = [summary.mean for summary in self.shuffles]
        return [b - a for a, b in zip(means, means[1:])]


def run_fig10(
    fractions: tuple[float, ...] = FIG10_FRACTIONS,
    repetitions: int = 30,
    seed: int = 0,
    jobs: int = 1,
) -> list[Fig10Curve]:
    """Build both Figure 10 curves (10K and 50K benign)."""
    results = run_scenario_grid(
        fig10_scenarios(),
        repetitions=repetitions,
        seed=seed,
        spawn_seeds=False,
        workers=jobs,
    )
    curves = []
    for result in results:
        summaries = cumulative_saved_curve(result, fractions)
        curves.append(
            Fig10Curve(
                benign=result.scenario.benign,
                fractions=fractions,
                shuffles=tuple(summaries),
                result=result,
            )
        )
    return curves


def render_fig10(curves: list[Fig10Curve]) -> str:
    """ASCII rendition of Figure 10."""
    rows = []
    for curve in curves:
        for fraction, summary in zip(curve.fractions, curve.shuffles):
            rows.append(
                {
                    "benign": curve.benign,
                    "saved fraction": f"{fraction:.0%}",
                    "shuffles": summary.format(1),
                }
            )
    return render_table(
        rows,
        title=(
            "Figure 10 — shuffles to reach each cumulative saved fraction, "
            "100K bots, 1000 replicas (paper: early shuffles save more)"
        ),
    )


def chart_fig10(curves: list[Fig10Curve]) -> str:
    """ASCII line chart matching the paper's axes (fraction -> shuffles)."""
    from .plots import Series, ascii_chart

    series = [
        Series(
            f"{curve.benign // 1000}K benign",
            list(curve.fractions),
            [summary.mean for summary in curve.shuffles],
        )
        for curve in curves
    ]
    return ascii_chart(
        series,
        title="Figure 10 — shuffles vs cumulative saved fraction",
        x_label="saved fraction",
        y_label="shuffles",
    )


def main() -> None:
    print(render_fig10(run_fig10(repetitions=5)))


if __name__ == "__main__":
    main()
