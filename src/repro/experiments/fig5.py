"""Figure 5 — running time of the (paper-literal) dynamic program.

The paper reports Matlab runtimes up to ~2.5 x 10^8 ms (tens of hours) for
1000 clients — which is precisely why the greedy algorithm exists.  Running
Algorithm 1 at N = 1000 inside a benchmark is therefore not feasible (nor
was it for the authors: they precomputed tables offline).  We reproduce the
figure's *message* two ways:

1. Measure Algorithm 1 wall-clock on a scaled-down grid (N <= ~120).
2. Fit the growth exponent across N and extrapolate to the paper's N = 1000
   to show the tens-of-hours order of magnitude.

The shape claims that survive scaling: runtime grows polynomially and
steeply in every parameter, and is larger for more replicas — the ordering
of the paper's four curves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.dp import optimal_assign
from .tables import render_table

__all__ = ["Fig5Row", "run_fig5", "render_fig5", "fit_growth_exponent"]

FIG5_CLIENTS: tuple[int, ...] = (40, 60, 80, 100, 120)
FIG5_BOT_FRACTION = 0.2  # paper sweeps M at fixed N; we scale M with N
FIG5_REPLICA_COUNTS: tuple[int, ...] = (4, 8)


@dataclass(frozen=True)
class Fig5Row:
    """Wall-clock of one Algorithm 1 invocation."""

    n_clients: int
    n_bots: int
    n_replicas: int
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1000.0


def run_fig5(
    client_counts: tuple[int, ...] = FIG5_CLIENTS,
    replica_counts: tuple[int, ...] = FIG5_REPLICA_COUNTS,
    bot_fraction: float = FIG5_BOT_FRACTION,
) -> list[Fig5Row]:
    """Time the literal Algorithm 1 across the scaled-down grid."""
    rows = []
    for n_replicas in replica_counts:
        for n_clients in client_counts:
            n_bots = max(1, int(round(bot_fraction * n_clients)))
            start = time.perf_counter()
            optimal_assign(n_clients, n_bots, n_replicas)
            elapsed = time.perf_counter() - start
            rows.append(
                Fig5Row(
                    n_clients=n_clients,
                    n_bots=n_bots,
                    n_replicas=n_replicas,
                    seconds=elapsed,
                )
            )
    return rows


def fit_growth_exponent(rows: list[Fig5Row]) -> float:
    """Least-squares slope of log(time) vs log(N) at the largest P.

    Because M scales with N in this grid, the fitted exponent folds the
    M-dependence in as well, matching how the paper's x-axis (bots) and
    figure text (clients) co-vary.
    """
    biggest_p = max(row.n_replicas for row in rows)
    pts = [(row.n_clients, row.seconds) for row in rows
           if row.n_replicas == biggest_p]
    if len(pts) < 2:
        raise ValueError("need at least two client counts to fit a slope")
    xs = np.log([p[0] for p in pts])
    ys = np.log([max(p[1], 1e-9) for p in pts])
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)


def extrapolate_to(rows: list[Fig5Row], n_clients: int) -> float:
    """Predicted seconds at ``n_clients`` from the fitted power law."""
    exponent = fit_growth_exponent(rows)
    biggest_p = max(row.n_replicas for row in rows)
    anchor = max(
        (row for row in rows if row.n_replicas == biggest_p),
        key=lambda row: row.n_clients,
    )
    return anchor.seconds * (n_clients / anchor.n_clients) ** exponent


def render_fig5(rows: list[Fig5Row]) -> str:
    """ASCII rendition of Figure 5's message."""
    table = render_table(
        [
            {
                "clients": row.n_clients,
                "bots": row.n_bots,
                "replicas": row.n_replicas,
                "time (ms)": row.milliseconds,
            }
            for row in rows
        ],
        title=(
            "Figure 5 — Algorithm 1 (literal DP) running time, scaled-down "
            "grid (paper: ~10^8 ms at N=1000 in Matlab)"
        ),
    )
    exponent = fit_growth_exponent(rows)
    projected = extrapolate_to(rows, 1000)
    return table + (
        f"\n\nfitted growth exponent (log-time vs log-N): {exponent:.2f}"
        f"\nextrapolated runtime at N=1000: {projected:,.0f} s"
        f" (~{projected / 3600:.1f} h; paper reports tens of hours)"
    )


def main() -> None:
    print(render_fig5(run_fig5()))


if __name__ == "__main__":
    main()
