"""The paper's headline claim, as a single runnable experiment.

Abstract / Section VII: "we can effectively mitigate strong DDoS attacks
(100K persistent attackers) by saving 80% of 50K benign clients in
approximately 60 shuffles, each of which takes only a few seconds".

The shuffle count reproduces here (tens of shuffles, same order); the
"few seconds per shuffle" half of the claim is covered by the Figure 12
migration experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.grids import run_scenario_grid
from ..sim.scenarios import headline_scenario
from ..sim.shuffle_sim import ScenarioResult

__all__ = ["HeadlineResult", "run_headline", "render_headline"]

PAPER_HEADLINE_SHUFFLES = 60.0


@dataclass(frozen=True)
class HeadlineResult:
    """Measured headline numbers next to the paper's."""

    result: ScenarioResult

    @property
    def mean_shuffles(self) -> float:
        return self.result.shuffles.mean

    @property
    def within_2x_of_paper(self) -> bool:
        """Loose shape check: same order of magnitude as ~60 shuffles."""
        return (
            PAPER_HEADLINE_SHUFFLES / 2
            <= self.mean_shuffles
            <= PAPER_HEADLINE_SHUFFLES * 2
        )


def run_headline(
    repetitions: int = 10, seed: int = 0, jobs: int = 1
) -> HeadlineResult:
    """Run the 50K-benign / 100K-bot / 1000-replica scenario.

    A single-cell grid, so ``jobs`` cannot speed it up — it exists so
    the runner can pass one flag to every experiment uniformly.
    """
    results = run_scenario_grid(
        [headline_scenario()],
        repetitions=repetitions,
        seed=seed,
        spawn_seeds=False,
        workers=min(jobs, 1),
    )
    return HeadlineResult(result=results[0])


def render_headline(headline: HeadlineResult) -> str:
    result = headline.result
    return "\n".join(
        [
            "Headline — mitigate 100K persistent bots, save 80% of 50K "
            "benign clients (1000 shuffling replicas)",
            f"paper:    ~{PAPER_HEADLINE_SHUFFLES:.0f} shuffles",
            f"measured: {result.shuffles.format(1)} shuffles "
            f"(n={result.shuffles.n}, {result.shuffles.confidence:.0%} CI)",
            f"saved fraction at stop: {result.saved_fraction.format(3)}",
            f"within 2x of paper: {headline.within_2x_of_paper}",
        ]
    )


def main() -> None:
    print(render_headline(run_headline()))


if __name__ == "__main__":
    main()
