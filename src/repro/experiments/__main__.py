"""``python -m repro.experiments`` dispatch."""

from __future__ import annotations

import sys

from .runner import main

sys.exit(main())
