"""``python -m repro.experiments`` dispatch."""

import sys

from .runner import main

sys.exit(main())
