"""Plain-text rendering helpers shared by all experiment drivers.

Every driver produces rows of named columns; :func:`render_table` turns
them into the aligned ASCII tables that the benchmarks print and that
EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: Any) -> str:
    """Render a cell: floats to sensible precision, everything else str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Format rows of dicts as an aligned ASCII table.

    Args:
        rows: one mapping per table row; missing keys render empty.
        columns: column order; defaults to the keys of the first row.
        title: optional heading printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)
