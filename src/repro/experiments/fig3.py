"""Figure 3 — greedy vs. optimal DP, benign clients saved in one shuffle.

Paper setting: 1000 clients, persistent bots ∈ {50, 100, 200, 300, 400,
500}, shuffling replicas ∈ {50, 100, 150, 200}.  The paper's observation is
that the greedy curves and the dynamic-programming curves *overlap* for all
parameter combinations.

The optimal value here is the static optimum from
:func:`repro.core.dp_fast.dp_fast_value` (see DESIGN.md §5.2 — the
paper-literal Algorithm 1 prices an adaptive relaxation and is
cross-checked separately at small N by the test suite and the Figure 5
driver).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import PlanRequest, plan
from ..core.dp_fast import dp_fast_value
from .tables import render_table

__all__ = ["Fig3Row", "run_fig3", "FIG3_BOT_COUNTS", "FIG3_REPLICA_COUNTS"]

FIG3_BOT_COUNTS: tuple[int, ...] = (50, 100, 200, 300, 400, 500)
FIG3_REPLICA_COUNTS: tuple[int, ...] = (50, 100, 150, 200)
FIG3_CLIENTS = 1000


@dataclass(frozen=True)
class Fig3Row:
    """One (P, M) cell of Figure 3."""

    n_replicas: int
    n_bots: int
    greedy_saved: float
    optimal_saved: float

    @property
    def n_benign(self) -> int:
        return FIG3_CLIENTS - self.n_bots

    @property
    def greedy_fraction(self) -> float:
        """Greedy E(S) as a share of the benign population (the Y axis)."""
        return self.greedy_saved / self.n_benign

    @property
    def optimal_fraction(self) -> float:
        return self.optimal_saved / self.n_benign

    @property
    def gap(self) -> float:
        """Optimal minus greedy, in benign-fraction points."""
        return self.optimal_fraction - self.greedy_fraction


def run_fig3(
    n_clients: int = FIG3_CLIENTS,
    bot_counts: tuple[int, ...] = FIG3_BOT_COUNTS,
    replica_counts: tuple[int, ...] = FIG3_REPLICA_COUNTS,
) -> list[Fig3Row]:
    """Compute every Figure 3 data point."""
    rows = []
    for n_replicas in replica_counts:
        for n_bots in bot_counts:
            greedy = plan(
                PlanRequest(
                    n_clients=n_clients,
                    n_bots=n_bots,
                    n_replicas=n_replicas,
                    method="greedy",
                )
            )
            optimal = dp_fast_value(n_clients, n_bots, n_replicas)
            rows.append(
                Fig3Row(
                    n_replicas=n_replicas,
                    n_bots=n_bots,
                    greedy_saved=greedy.expected_saved,
                    optimal_saved=optimal,
                )
            )
    return rows


def render_fig3(rows: list[Fig3Row]) -> str:
    """ASCII rendition of Figure 3 with the paper's qualitative claim."""
    table = render_table(
        [
            {
                "replicas": row.n_replicas,
                "bots": row.n_bots,
                "greedy E(S)": row.greedy_saved,
                "optimal E(S)": row.optimal_saved,
                "greedy %benign": 100 * row.greedy_fraction,
                "optimal %benign": 100 * row.optimal_fraction,
                "gap (pts)": 100 * row.gap,
            }
            for row in rows
        ],
        title=(
            "Figure 3 — greedy vs optimal DP, one shuffle, "
            f"{FIG3_CLIENTS} clients (paper: curves overlap)"
        ),
    )
    worst_gap = max(row.gap for row in rows)
    return table + f"\n\nworst greedy-vs-optimal gap: {100 * worst_gap:.3f} points"


def main() -> None:
    print(render_fig3(run_fig3()))


if __name__ == "__main__":
    main()
