"""CLI entry point: ``python -m repro.experiments <experiment> [options]``.

Runs one (or all) of the paper's experiments and prints its table.  The
full paper-fidelity grids can take minutes; ``--quick`` trims repetitions
and grid density to something interactive while keeping every qualitative
claim checkable.  ``--chart`` appends an ASCII rendition of the figure's
curves where the experiment has any.  ``--jobs N`` fans the simulation
grids (fig8/fig9/fig10/headline/ablations) out over N worker processes
through :mod:`repro.runtime` — the numbers are identical for any N; the
remaining experiments are closed-form or already fast and run serially.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from . import fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig12
from . import ablations, headline

__all__ = ["main", "EXPERIMENTS"]


def _run_fig3(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    rows = fig3.run_fig3()
    return fig3.render_fig3(rows), rows


def _run_fig4(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    rows = fig4.run_fig4()
    return fig4.render_fig4(rows), rows


def _run_fig5(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    counts = (30, 45, 60) if quick else fig5.FIG5_CLIENTS
    replicas = (4,) if quick else fig5.FIG5_REPLICA_COUNTS
    rows = fig5.run_fig5(counts, replicas)
    return fig5.render_fig5(rows), rows


def _run_fig6(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    rows = fig6.run_fig6()
    return fig6.render_fig6(rows), rows


def _run_fig7(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    repeats = 10 if quick else fig7.FIG7_REPEATS
    rows = fig7.run_fig7(repeats=repeats)
    return fig7.render_fig7(rows), rows


def _run_fig8(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    if quick:
        rows = fig8.run_fig8(
            bot_counts=(10_000, 30_000, 50_000, 100_000),
            repetitions=3,
            jobs=jobs,
        )
    else:
        rows = fig8.run_fig8(repetitions=30, jobs=jobs)
    output = fig8.render_fig8(rows)
    if chart:
        output += "\n\n" + fig8.chart_fig8(rows)
    return output, rows


def _run_fig9(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    if quick:
        rows = fig9.run_fig9(
            replica_counts=(900, 1200, 1600, 2000),
            repetitions=3,
            jobs=jobs,
        )
    else:
        rows = fig9.run_fig9(repetitions=30, jobs=jobs)
    output = fig9.render_fig9(rows)
    if chart:
        output += "\n\n" + fig9.chart_fig9(rows)
    return output, rows


def _run_fig10(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    reps = 3 if quick else 30
    curves = fig10.run_fig10(repetitions=reps, jobs=jobs)
    output = fig10.render_fig10(curves)
    if chart:
        output += "\n\n" + fig10.chart_fig10(curves)
    return output, curves


def _run_fig12(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    reps = 5 if quick else fig12.FIG12_REPEATS
    rows = fig12.run_fig12(repetitions=reps)
    output = fig12.render_fig12(rows)
    if chart:
        output += "\n\n" + fig12.chart_fig12(rows)
    return output, rows


def _run_headline(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    reps = 3 if quick else 10
    result = headline.run_headline(repetitions=reps, jobs=jobs)
    return headline.render_headline(result), result


def _run_ablations(quick: bool, chart: bool, jobs: int) -> tuple[str, object]:
    results = ablations.run_ablations(
        repetitions=3 if quick else 10, jobs=jobs
    )
    return ablations.render_ablations(results), results


EXPERIMENTS: dict[str, Callable[[bool, bool, int], tuple[str, object]]] = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig12": _run_fig12,
    "headline": _run_headline,
    "ablations": _run_ablations,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation of 'Catch Me if You Can: A "
            "Cloud-Enabled DDoS Defense' (DSN 2014)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which paper figure/claim to reproduce",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="trim repetitions/grids for an interactive run",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append ASCII charts of the figure's curves",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as JSON to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the simulation grids (fig8/fig9/fig10/"
            "headline/ablations); results are identical for any N"
        ),
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    names = list(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    collected: dict[str, object] = {}
    for name in names:
        start = time.perf_counter()
        output, data = EXPERIMENTS[name](args.quick, args.chart, args.jobs)
        elapsed = time.perf_counter() - start
        collected[name] = data
        print(output)
        print(f"\n[{name} finished in {elapsed:.1f} s]\n")
    if args.json:
        from .export import dump_json

        dump_json(collected, args.json)
        print(f"[results written to {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
