"""Figure 8 — shuffles to save 80% / 95% of benign clients vs. bot count.

Paper setting: 1000 shuffling replicas; benign populations 10K and 50K;
persistent bots 1..10 x 10^4 arriving in a Poisson process (5000 per 3
shuffles) with benign churn (100 per 3 shuffles); 30 repetitions, 99% CI.

Paper claims to verify:

- shuffle count rises *slowly* with the bot population — a ten-fold bot
  increase costs less than a three-fold shuffle increase;
- more benign clients need more shuffles;
- the 95% target costs substantially (>40%) more shuffles than 80%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.grids import run_scenario_grid
from ..sim.scenarios import FIG8_BENIGN_COUNTS, FIG8_BOT_COUNTS
from ..sim.shuffle_sim import ScenarioResult, ShuffleScenario
from ..sim.stats import SampleSummary
from .tables import render_table

__all__ = ["Fig8Row", "run_fig8", "render_fig8"]


@dataclass(frozen=True)
class Fig8Row:
    """One Figure 8 data point: shuffles needed for one curve at one x."""

    benign: int
    bots: int
    target: float
    shuffles: SampleSummary
    result: ScenarioResult


def run_fig8(
    bot_counts: tuple[int, ...] = FIG8_BOT_COUNTS,
    benign_counts: tuple[int, ...] = FIG8_BENIGN_COUNTS,
    targets: tuple[float, ...] = (0.8, 0.95),
    repetitions: int = 30,
    seed: int = 0,
    jobs: int = 1,
) -> list[Fig8Row]:
    """Run the Figure 8 grid (shrink the grid or reps for quick runs).

    ``jobs`` fans the grid out over worker processes; every cell keeps
    the base seed it always had (``spawn_seeds=False``), so the numbers
    are identical to the serial run for any job count.
    """
    scenarios = [
        ShuffleScenario(
            benign=benign,
            bots=bots,
            n_replicas=1000,
            target_fraction=target,
        )
        for benign in benign_counts
        for target in targets
        for bots in bot_counts
    ]
    results = run_scenario_grid(
        scenarios,
        repetitions=repetitions,
        seed=seed,
        spawn_seeds=False,
        workers=jobs,
    )
    return [
        Fig8Row(
            benign=result.scenario.benign,
            bots=result.scenario.bots,
            target=result.scenario.target_fraction,
            shuffles=result.shuffles,
            result=result,
        )
        for result in results
    ]


def render_fig8(rows: list[Fig8Row]) -> str:
    """ASCII rendition of Figure 8."""
    return render_table(
        [
            {
                "benign": row.benign,
                "target": f"{row.target:.0%}",
                "bots": row.bots,
                "shuffles": row.shuffles.format(1),
            }
            for row in rows
        ],
        title=(
            "Figure 8 — shuffles to save 80%/95% of benign clients, "
            "1000 shuffling replicas (paper headline: ~60 shuffles for "
            "80% of 50K benign vs 100K bots)"
        ),
    )


def chart_fig8(rows: list[Fig8Row]) -> str:
    """ASCII line chart of the four Figure 8 curves."""
    from .plots import Series, ascii_chart

    series = []
    for benign in sorted({row.benign for row in rows}):
        for target in sorted({row.target for row in rows}):
            pts = [
                (row.bots, row.shuffles.mean)
                for row in rows
                if row.benign == benign and row.target == target
            ]
            if len(pts) >= 2:
                series.append(
                    Series(
                        f"{benign // 1000}K/{target:.0%}",
                        [p[0] for p in pts],
                        [p[1] for p in pts],
                    )
                )
    return ascii_chart(
        series,
        title="Figure 8 — shuffles vs persistent bots",
        x_label="persistent bots",
        y_label="shuffles",
    )


def main() -> None:
    # A trimmed grid keeps the CLI run interactive; benchmarks and
    # EXPERIMENTS.md use the full grid.
    rows = run_fig8(
        bot_counts=(10_000, 50_000, 100_000), repetitions=5
    )
    print(render_fig8(rows))


if __name__ == "__main__":
    main()
