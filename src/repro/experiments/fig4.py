"""Figure 4 — greedy vs. naive even distribution, one shuffle.

Paper setting: 1000 clients, bots as in Figure 3, replicas ∈ {100, 200}.
Claim: even distribution is competitive only while the bot count is below
the replica count; once ``M`` exceeds ``P`` it saves almost nobody, while
the greedy planner degrades gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import PlanRequest, plan
from .tables import render_table

__all__ = ["Fig4Row", "run_fig4", "render_fig4"]

FIG4_BOT_COUNTS: tuple[int, ...] = (50, 100, 200, 300, 400, 500)
FIG4_REPLICA_COUNTS: tuple[int, ...] = (100, 200)
FIG4_CLIENTS = 1000


@dataclass(frozen=True)
class Fig4Row:
    """One (P, M) cell of Figure 4."""

    n_replicas: int
    n_bots: int
    greedy_saved: float
    even_saved: float

    @property
    def n_benign(self) -> int:
        return FIG4_CLIENTS - self.n_bots

    @property
    def greedy_fraction(self) -> float:
        return self.greedy_saved / self.n_benign

    @property
    def even_fraction(self) -> float:
        return self.even_saved / self.n_benign


def run_fig4(
    n_clients: int = FIG4_CLIENTS,
    bot_counts: tuple[int, ...] = FIG4_BOT_COUNTS,
    replica_counts: tuple[int, ...] = FIG4_REPLICA_COUNTS,
) -> list[Fig4Row]:
    """Compute every Figure 4 data point."""
    rows = []
    for n_replicas in replica_counts:
        for n_bots in bot_counts:
            greedy = plan(
                PlanRequest(
                    n_clients=n_clients,
                    n_bots=n_bots,
                    n_replicas=n_replicas,
                    method="greedy",
                )
            )
            even = plan(
                PlanRequest(
                    n_clients=n_clients,
                    n_bots=n_bots,
                    n_replicas=n_replicas,
                    method="even",
                )
            )
            rows.append(
                Fig4Row(
                    n_replicas=n_replicas,
                    n_bots=n_bots,
                    greedy_saved=greedy.expected_saved,
                    even_saved=even.expected_saved,
                )
            )
    return rows


def render_fig4(rows: list[Fig4Row]) -> str:
    """ASCII rendition of Figure 4."""
    return render_table(
        [
            {
                "replicas": row.n_replicas,
                "bots": row.n_bots,
                "greedy %benign": 100 * row.greedy_fraction,
                "even %benign": 100 * row.even_fraction,
                "bots>replicas": row.n_bots > row.n_replicas,
            }
            for row in rows
        ],
        title=(
            "Figure 4 — greedy vs even distribution, one shuffle, "
            f"{FIG4_CLIENTS} clients (paper: even collapses once M > P)"
        ),
    )


def main() -> None:
    print(render_fig4(run_fig4()))


if __name__ == "__main__":
    main()
