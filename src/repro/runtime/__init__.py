"""Parallel execution runtime: deterministic fan-out, result cache,
resumable sweeps.

The runtime turns a scenario grid into pure, content-fingerprinted
tasks (:mod:`~repro.runtime.task`), runs them through a
``concurrent.futures`` process pool with per-task retry/timeout
(:mod:`~repro.runtime.executor`), checkpoints every completed cell in a
content-addressed on-disk cache (:mod:`~repro.runtime.cache`), and
adapts the simulation layer's scenario and campaign grids onto that
machinery (:mod:`~repro.runtime.grids`).

Determinism contract: a task's seed stream and its fingerprint are pure
functions of the task's content, and every value is JSON-normalized, so
a grid's results are byte-identical for any worker count, any
completion order, and any mixture of fresh and cached cells.

Importing this package registers the sim-layer execution backends
(see :mod:`repro.sim.backend`); ``import repro`` does so automatically.
"""

from __future__ import annotations

from .cache import CacheEntry, ResultCache
from .executor import (
    GridError,
    RetryPolicy,
    RunReport,
    TaskError,
    TaskOutcome,
    run_tasks,
)
from .grids import (
    run_campaign_grid,
    run_scenario_grid,
    run_scenario_grid_report,
    scenario_tasks,
    sweep_records,
)

# Importing the plan store registers it as the core layer's durable
# PlanCache backend (repro.core.plan_cache.make_plan_store).
from .plan_store import ResultCachePlanStore
from .task import (
    Task,
    canonical_json,
    module_code_version,
    seed_sequence_for,
    task_fingerprint,
    task_seed_sequence,
)

__all__ = [
    "CacheEntry",
    "GridError",
    "ResultCache",
    "ResultCachePlanStore",
    "RetryPolicy",
    "RunReport",
    "Task",
    "TaskError",
    "TaskOutcome",
    "canonical_json",
    "module_code_version",
    "run_campaign_grid",
    "run_scenario_grid",
    "run_scenario_grid_report",
    "run_tasks",
    "scenario_tasks",
    "seed_sequence_for",
    "sweep_records",
    "task_fingerprint",
    "task_seed_sequence",
]
