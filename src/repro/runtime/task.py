"""Pure-task model: content fingerprints and deterministic seeds.

The execution runtime treats one grid cell as a :class:`Task` — a pure,
picklable, module-level function plus JSON-encodable keyword parameters.
Everything else the runtime offers (parallel fan-out, the on-disk result
cache, resumable sweeps) follows from two derived quantities:

- the **fingerprint** — a SHA-256 over the canonical encoding of
  *(function reference, parameters, code version)*.  Two tasks with the
  same fingerprint are interchangeable: same code, same inputs, same
  (deterministic) output.  The fingerprint is the cache address and the
  resume key.
- the **seed sequence** — a :class:`numpy.random.SeedSequence` spawned
  from the fingerprint's digest words.  A task that asks for runtime
  seeding (``seed_param``) receives a generator stream that is a pure
  function of *what the task is*, never of which worker ran it or when.

The code version defaults to a hash of the task function's module
source, so editing the simulation code invalidates stale cache entries
automatically; pass ``code_version`` explicitly to pin or widen that
behaviour.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import inspect
import json
import sys
from typing import Any, Callable, Mapping

import numpy as np

__all__ = [
    "Task",
    "canonical_json",
    "module_code_version",
    "seed_sequence_for",
    "task_fingerprint",
    "task_seed_sequence",
]


def _jsonable(value: object) -> object:
    """Recursively coerce ``value`` into canonical JSON-encodable form.

    Tuples become lists (JSON has no tuple), mapping keys must be
    strings, and anything outside the JSON data model is rejected so a
    fingerprint can never silently depend on ``repr`` of an arbitrary
    object.
    """
    if value is None or isinstance(value, (str, int, bool, float)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"task parameter keys must be strings, got {key!r}"
                )
            encoded[key] = _jsonable(item)
        return encoded
    raise TypeError(
        "task parameters must be JSON-encodable (None, bool, int, float, "
        f"str, list/tuple, dict), got {type(value).__name__}"
    )


def canonical_json(value: object) -> str:
    """Stable JSON rendering: sorted keys, no whitespace, tuples=lists."""
    return json.dumps(
        _jsonable(value), sort_keys=True, separators=(",", ":")
    )


@dataclasses.dataclass(frozen=True)
class Task:
    """One pure unit of work.

    Attributes:
        fn: a **module-level** function (so worker processes can unpickle
            it) called as ``fn(**params)``.  It must be pure given its
            parameters and return a JSON-encodable value — the runtime
            round-trips every result through JSON so fresh and cached
            values are indistinguishable.
        params: keyword arguments, JSON-encodable (tuples are canonical-
            ized to lists before the call).
        key: human-readable label for progress and telemetry; defaults
            to the function reference.
        seed_param: when set, the runtime injects a
            :class:`numpy.random.SeedSequence` derived from the task
            fingerprint under this keyword — the task never sees
            wall-clock entropy.
        code_version: override for the code-version component of the
            fingerprint (default: hash of ``fn``'s module source).
    """

    fn: Callable[..., Any]
    params: Mapping[str, object] = dataclasses.field(default_factory=dict)
    key: str | None = None
    seed_param: str | None = None
    code_version: str | None = None

    @property
    def function_ref(self) -> str:
        """Dotted reference used in fingerprints and telemetry."""
        return f"{self.fn.__module__}:{self.fn.__qualname__}"

    @property
    def label(self) -> str:
        return self.key if self.key is not None else self.function_ref


@functools.lru_cache(maxsize=None)
def module_code_version(module_name: str) -> str:
    """Short hash of a module's source text (cache-invalidation token).

    Falls back to ``"unversioned"`` when the source is unavailable
    (frozen interpreter, REPL-defined function) — such tasks still cache,
    but stale entries must then be invalidated manually.
    """
    module = sys.modules.get(module_name)
    if module is None:
        return "unversioned"
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return "unversioned"
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def task_fingerprint(task: Task) -> str:
    """Content address of a task: SHA-256 hex over its canonical form.

    The digest covers the function reference, the canonicalized
    parameters, and the code version, so a fingerprint changes — and
    cached results stop matching — exactly when the answer could change.
    """
    version = (
        task.code_version
        if task.code_version is not None
        else module_code_version(task.fn.__module__)
    )
    payload = {
        "function": task.function_ref,
        "params": dict(task.params),
        "code_version": version,
    }
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def entropy_words(fingerprint: str) -> tuple[int, ...]:
    """The fingerprint digest as 32-bit words (SeedSequence entropy)."""
    digest = bytes.fromhex(fingerprint)
    return tuple(
        int.from_bytes(digest[offset : offset + 4], "big")
        for offset in range(0, len(digest), 4)
    )


def seed_sequence_for(fingerprint: str) -> np.random.SeedSequence:
    """Deterministic :class:`~numpy.random.SeedSequence` for a task.

    The sequence is spawned from the fingerprint's digest words, so the
    stream a task draws depends only on the task's content — never on
    worker count, scheduling order, or wall-clock time.
    """
    return np.random.SeedSequence(entropy_words(fingerprint))


def task_seed_sequence(task: Task) -> np.random.SeedSequence:
    """Shorthand for ``seed_sequence_for(task_fingerprint(task))``."""
    return seed_sequence_for(task_fingerprint(task))
