"""Durable plan-cache backing over the content-addressed ResultCache.

Implements the :class:`repro.core.plan_cache.PlanStore` protocol: each
precomputed plan cell is one :class:`~repro.runtime.cache.CacheEntry`
addressed by a SHA-256 fingerprint over the cell key ``(N, M, P)`` plus
the combined code version of the modules whose arithmetic determines
the plan (``dp_fast``, ``combinatorics``, ``objective``).  Editing any
of those modules silently changes every fingerprint, so a stale store
degrades to a cold one — plans are recomputed and re-saved, never
served wrong.

The core layer never imports this module; it is registered as the
plan-store factory when :mod:`repro.runtime` is imported (which
``import repro`` does automatically).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Sequence

from ..core.plan_cache import register_plan_store_factory
from .cache import CacheEntry, ResultCache
from .grids import _combined_code_version
from .task import canonical_json

__all__ = ["ResultCachePlanStore", "plan_cell_fingerprint"]

#: Modules whose source determines a precomputed plan's content.
_PLAN_CODE_MODULES = (
    "repro.core.dp_fast",
    "repro.core.combinatorics",
    "repro.core.objective",
)

_FUNCTION_REF = "repro.core.plan_cache:PlanCache.precompute"


def plan_cell_fingerprint(
    n_clients: int, n_bots: int, n_replicas: int
) -> str:
    """Content address of one plan cell (key + planner code version)."""
    payload = canonical_json(
        {
            "function": _FUNCTION_REF,
            "key": [int(n_clients), int(n_bots), int(n_replicas)],
            "code_version": _combined_code_version(_PLAN_CODE_MODULES),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCachePlanStore:
    """:class:`PlanStore` over the runtime's atomic on-disk cache."""

    def __init__(self, root: Path | str) -> None:
        self.cache = ResultCache(root)

    def load(
        self, n_clients: int, n_bots: int, n_replicas: int
    ) -> tuple[int, ...] | None:
        entry = self.cache.get(
            plan_cell_fingerprint(n_clients, n_bots, n_replicas)
        )
        if entry is None or not isinstance(entry.value, list):
            return None
        try:
            return tuple(int(size) for size in entry.value)
        except (TypeError, ValueError):
            return None

    def save(
        self,
        n_clients: int,
        n_bots: int,
        n_replicas: int,
        sizes: Sequence[int],
    ) -> None:
        fingerprint = plan_cell_fingerprint(n_clients, n_bots, n_replicas)
        self.cache.put(
            CacheEntry(
                fingerprint=fingerprint,
                value=[int(size) for size in sizes],
                key=f"plan:{n_clients},{n_bots},{n_replicas}",
                function=_FUNCTION_REF,
            )
        )


register_plan_store_factory(
    lambda root: ResultCachePlanStore(root)
)
