"""Content-addressed on-disk result cache with atomic, resumable writes.

Layout (one file per task, addressed by fingerprint)::

    <root>/
      ab/
        ab34…ef.json     # {"fingerprint", "key", "function",
        …                #  "value", "wall_time_s"}

Entries are written via a temporary file in the same directory followed
by :func:`os.replace`, so a killed or crashed run can never leave a torn
entry — whatever is in the cache is a complete result, which is what
makes an interrupted sweep safely resumable.  A corrupt entry (manual
tampering, disk fault) is treated as a miss and removed.

The cache is *content-addressed*: the fingerprint already encodes the
task's function, parameters, and code version (see
:mod:`repro.runtime.task`), so invalidation is mostly automatic — change
the parameters or the code and the lookups simply miss.  Explicit
:meth:`ResultCache.invalidate` / :meth:`ResultCache.clear` exist for the
remaining cases (e.g. a dependency upgrade the code hash cannot see).
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Iterator

__all__ = ["CacheEntry", "ResultCache"]


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One cached task result."""

    fingerprint: str
    value: object
    key: str | None = None
    function: str | None = None
    wall_time_s: float = 0.0


class ResultCache:
    """Fingerprint-addressed JSON store under one root directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        #: lookup counters for telemetry (reset per process, not stored).
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> CacheEntry | None:
        """The cached entry for ``fingerprint``, or None on a miss.

        A torn or corrupt file counts as a miss and is deleted so the
        task simply recomputes.
        """
        path = self._path(fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            entry = CacheEntry(
                fingerprint=payload["fingerprint"],
                value=payload["value"],
                key=payload.get("key"),
                function=payload.get("function"),
                wall_time_s=float(payload.get("wall_time_s", 0.0)),
            )
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        if entry.fingerprint != fingerprint:
            # Moved or hand-edited file: never serve it under a key its
            # content does not match.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_fingerprints())

    def iter_fingerprints(self) -> Iterator[str]:
        """All stored fingerprints, in sorted (deterministic) order."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, entry: CacheEntry) -> None:
        """Atomically persist one completed result (the checkpoint)."""
        path = self._path(entry.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": entry.fingerprint,
            "key": entry.key,
            "function": entry.function,
            "value": entry.value,
            "wall_time_s": entry.wall_time_s,
        }
        tmp = path.parent / f".{os.getpid()}.{path.name}.tmp"
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, path)
        self.writes += 1

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry; True when something was removed."""
        path = self._path(fingerprint)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = 0
        for fingerprint in list(self.iter_fingerprints()):
            if self.invalidate(fingerprint):
                removed += 1
        return removed
