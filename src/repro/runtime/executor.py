"""Deterministic parallel task execution with checkpoints and telemetry.

:func:`run_tasks` turns a list of :class:`~repro.runtime.task.Task`
objects into a :class:`RunReport`:

- **Determinism** — every task's inputs (parameters, injected seed
  sequence) are a pure function of the task itself, results are indexed
  by task position, and every value is round-tripped through JSON, so
  the report is byte-identical regardless of worker count or completion
  order, and indistinguishable between fresh and cached execution.
- **Checkpointing** — with a :class:`~repro.runtime.cache.ResultCache`,
  each completed task is persisted *as it finishes*; a crashed, killed,
  or partially failed grid resumes from the cache on the next run
  instead of recomputing.
- **Failure containment** — a raising task produces a structured
  :class:`TaskError` in its outcome instead of tearing down the grid;
  per-attempt retries use deterministic bounded exponential backoff.
- **Timeouts** — in process-pool mode each attempt has a deadline
  (measured from submission; submission is throttled to one in-flight
  task per worker, so queue time never counts against a task).  A
  worker that exceeds it is abandoned: its eventual result is discarded
  and its slot is released, which can transiently oversubscribe CPUs
  but never loses the rest of the grid.  Serial mode cannot interrupt
  a running call and therefore ignores ``timeout``.
- **Telemetry** — per-task wall time, attempts, and cache provenance,
  exportable as JSON via :meth:`RunReport.write_json`.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..obs.export import export_json
from ..obs.instruments import Instruments, resolve_instruments
from .cache import CacheEntry, ResultCache
from .task import Task, entropy_words, task_fingerprint

__all__ = [
    "GridError",
    "ProgressFn",
    "RetryPolicy",
    "RunReport",
    "TaskError",
    "TaskOutcome",
    "run_tasks",
]

#: progress callback: (outcome, completed count, total count).  Called
#: in *completion* order (nondeterministic under parallelism); only the
#: final report ordering is part of the determinism contract.
ProgressFn = Callable[["TaskOutcome", int, int], None]

#: scheduler tick bounds (seconds) for the pool event loop.
_MIN_WAIT = 0.01
_MAX_WAIT = 0.25


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry, backoff, and timeout settings.

    Attributes:
        retries: extra attempts after the first failure (0 = fail fast).
        backoff_base: sleep before the first retry, in seconds.
        backoff_cap: upper bound on any single backoff sleep.
        timeout: per-attempt deadline in seconds (pool mode only; serial
            execution cannot interrupt a running call).
    """

    retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    timeout: float | None = None

    def backoff(self, failed_attempts: int) -> float:
        """Deterministic bounded exponential backoff (no jitter: retry
        timing must not perturb reproducibility or tests)."""
        if failed_attempts < 1:
            return 0.0
        return min(
            self.backoff_base * (2 ** (failed_attempts - 1)),
            self.backoff_cap,
        )


@dataclasses.dataclass(frozen=True)
class TaskError:
    """Structured record of a task's final failure."""

    error_type: str
    message: str
    traceback_text: str
    attempts: int

    def to_json_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class TaskOutcome:
    """One task's result (or failure) plus execution telemetry."""

    index: int
    key: str
    fingerprint: str
    value: object = None
    error: TaskError | None = None
    cached: bool = False
    attempts: int = 0
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def status(self) -> str:
        if self.error is not None:
            return "failed"
        return "cached" if self.cached else "ok"

    def to_json_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_s": self.wall_time_s,
            "error": None if self.error is None else self.error.to_json_dict(),
        }


class GridError(RuntimeError):
    """Raised when a grid finishes with failed tasks.

    Successful results are already checkpointed in the cache (when one
    was given), so rerunning the same grid with the same cache resumes
    from where it left off instead of recomputing.
    """

    def __init__(self, report: "RunReport") -> None:
        self.report = report
        failures = report.failures
        preview = "; ".join(
            f"{outcome.key}: {outcome.error.error_type}"
            f" ({outcome.error.message})"
            for outcome in failures[:3]
            if outcome.error is not None
        )
        if len(failures) > 3:
            preview += f"; … {len(failures) - 3} more"
        super().__init__(
            f"{len(failures)} of {len(report.outcomes)} tasks failed: "
            f"{preview}. Completed results are checkpointed; rerun with "
            "the same cache to resume."
        )


@dataclasses.dataclass(frozen=True)
class RunReport:
    """Outcome of one :func:`run_tasks` call, in task order."""

    outcomes: tuple[TaskOutcome, ...]
    workers: int
    wall_time_s: float

    @property
    def failures(self) -> list[TaskOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def cache_misses(self) -> int:
        return sum(
            1
            for outcome in self.outcomes
            if not outcome.cached and outcome.ok
        )

    def raise_for_failures(self) -> None:
        if self.failures:
            raise GridError(self)

    def values(self) -> list[object]:
        """All task values in task order; raises :class:`GridError` if
        any task failed."""
        self.raise_for_failures()
        return [outcome.value for outcome in self.outcomes]

    def to_json_dict(self) -> dict[str, object]:
        """Machine-readable run telemetry (values excluded by design —
        they live in the cache; this is the progress/wall-time record)."""
        return {
            "workers": self.workers,
            "n_tasks": len(self.outcomes),
            "n_cached": self.cache_hits,
            "n_failed": len(self.failures),
            "wall_time_s": self.wall_time_s,
            "task_wall_time_s": sum(
                outcome.wall_time_s for outcome in self.outcomes
            ),
            "tasks": [outcome.to_json_dict() for outcome in self.outcomes],
        }

    def write_json(self, path: Path | str) -> None:
        export_json(self.to_json_dict(), path)


# ----------------------------------------------------------------------
# execution primitives
# ----------------------------------------------------------------------
def _execute(
    fn: Callable[..., Any],
    params: Mapping[str, object],
    seed_param: str | None,
    words: Sequence[int] | None,
) -> object:
    """Worker-side entry point: seed injection + JSON normalization.

    Module-level so process pools can pickle it by reference.  The JSON
    round trip makes fresh values byte-compatible with cache loads
    (tuples become lists, keys become strings) — exact for floats, which
    round-trip losslessly through Python's JSON.
    """
    call_params = dict(params)
    if seed_param is not None:
        call_params[seed_param] = np.random.SeedSequence(list(words or ()))
    value = fn(**call_params)
    return json.loads(json.dumps(value))


def _error_from(exc: BaseException, attempts: int) -> TaskError:
    return TaskError(
        error_type=type(exc).__name__,
        message=str(exc),
        traceback_text="".join(traceback.format_exception(exc)),
        attempts=attempts,
    )


def _checkpoint(
    cache: ResultCache | None, task: Task, outcome: TaskOutcome
) -> None:
    if cache is None or not outcome.ok or outcome.cached:
        return
    cache.put(
        CacheEntry(
            fingerprint=outcome.fingerprint,
            value=outcome.value,
            key=outcome.key,
            function=task.function_ref,
            wall_time_s=outcome.wall_time_s,
        )
    )


def _run_one_serial(
    task: Task, fingerprint: str, index: int, policy: RetryPolicy
) -> TaskOutcome:
    words = entropy_words(fingerprint) if task.seed_param else None
    attempts = 0
    elapsed = 0.0
    while True:
        attempts += 1
        begun = time.perf_counter()
        try:
            value = _execute(task.fn, task.params, task.seed_param, words)
        except Exception as exc:
            elapsed += time.perf_counter() - begun
            if attempts <= policy.retries:
                time.sleep(policy.backoff(attempts))
                continue
            return TaskOutcome(
                index=index,
                key=task.label,
                fingerprint=fingerprint,
                error=_error_from(exc, attempts),
                attempts=attempts,
                wall_time_s=elapsed,
            )
        elapsed += time.perf_counter() - begun
        return TaskOutcome(
            index=index,
            key=task.label,
            fingerprint=fingerprint,
            value=value,
            attempts=attempts,
            wall_time_s=elapsed,
        )


def _run_in_pool(
    tasks: Sequence[Task],
    fingerprints: Sequence[str],
    pending: Sequence[int],
    workers: int,
    policy: RetryPolicy,
    cache: ResultCache | None,
    emit: Callable[[TaskOutcome], None],
) -> None:
    """Pool event loop: throttled submission, retries, deadlines."""
    queue: deque[tuple[int, int]] = deque((i, 1) for i in pending)
    retry_heap: list[tuple[float, int, int]] = []  # (eligible_at, idx, att)
    running: dict[Future, tuple[int, int, float]] = {}
    elapsed: dict[int, float] = {i: 0.0 for i in pending}

    def finish(index: int, attempt: int, exc: BaseException | None,
               value: object) -> None:
        task = tasks[index]
        if exc is None:
            outcome = TaskOutcome(
                index=index,
                key=task.label,
                fingerprint=fingerprints[index],
                value=value,
                attempts=attempt,
                wall_time_s=elapsed[index],
            )
            _checkpoint(cache, task, outcome)
            emit(outcome)
        elif attempt <= policy.retries:
            heapq.heappush(
                retry_heap,
                (
                    time.perf_counter() + policy.backoff(attempt),
                    index,
                    attempt + 1,
                ),
            )
        else:
            emit(
                TaskOutcome(
                    index=index,
                    key=task.label,
                    fingerprint=fingerprints[index],
                    error=_error_from(exc, attempt),
                    attempts=attempt,
                    wall_time_s=elapsed[index],
                )
            )

    pool = ProcessPoolExecutor(max_workers=workers)
    abandoned = False
    try:
        while queue or retry_heap or running:
            now = time.perf_counter()
            while retry_heap and retry_heap[0][0] <= now:
                _, index, attempt = heapq.heappop(retry_heap)
                queue.append((index, attempt))
            while queue and len(running) < workers:
                index, attempt = queue.popleft()
                task = tasks[index]
                words = (
                    entropy_words(fingerprints[index])
                    if task.seed_param
                    else None
                )
                future = pool.submit(
                    _execute, task.fn, dict(task.params),
                    task.seed_param, words,
                )
                running[future] = (index, attempt, time.perf_counter())
            if not running:
                if retry_heap:
                    time.sleep(
                        max(_MIN_WAIT, retry_heap[0][0] - time.perf_counter())
                    )
                continue

            done, _ = wait(
                set(running),
                timeout=_wait_budget(running, retry_heap, policy),
                return_when=FIRST_COMPLETED,
            )
            now = time.perf_counter()
            for future in done:
                index, attempt, submitted_at = running.pop(future)
                elapsed[index] += now - submitted_at
                try:
                    value = future.result()
                except Exception as exc:
                    finish(index, attempt, exc, None)
                else:
                    finish(index, attempt, None, value)

            if policy.timeout is None:
                continue
            for future in [
                f
                for f, (_, _, submitted_at) in running.items()
                if now - submitted_at >= policy.timeout
            ]:
                index, attempt, submitted_at = running.pop(future)
                elapsed[index] += now - submitted_at
                if not future.cancel():
                    # Already running in a worker we cannot interrupt:
                    # abandon it — the eventual result is discarded and
                    # the worker pool is released without joining it.
                    abandoned = True
                finish(
                    index,
                    attempt,
                    TimeoutError(
                        f"attempt exceeded the {policy.timeout:g}s "
                        "per-task deadline"
                    ),
                    None,
                )
    finally:
        # Abandoned workers may still be computing; don't block the
        # grid's completion on joining them.
        pool.shutdown(wait=not abandoned, cancel_futures=True)


def _wait_budget(
    running: Mapping[Future, tuple[int, int, float]],
    retry_heap: Sequence[tuple[float, int, int]],
    policy: RetryPolicy,
) -> float:
    """Sleep budget until the next interesting event (completion polls,
    a retry becoming eligible, or a deadline expiring)."""
    now = time.perf_counter()
    budget = _MAX_WAIT
    if retry_heap:
        budget = min(budget, retry_heap[0][0] - now)
    if policy.timeout is not None:
        next_deadline = min(
            submitted_at + policy.timeout
            for (_, _, submitted_at) in running.values()
        )
        budget = min(budget, next_deadline - now)
    return max(_MIN_WAIT, budget)


# ----------------------------------------------------------------------
# the public entry point
# ----------------------------------------------------------------------
def run_tasks(
    tasks: Iterable[Task],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    policy: RetryPolicy | None = None,
    progress: ProgressFn | None = None,
    instruments: Instruments | None = None,
) -> RunReport:
    """Run every task; return outcomes in task order.

    Args:
        tasks: the grid.  Each task's function must be module-level
            (picklable) and return a JSON-encodable value.
        workers: 1 runs in-process; >1 uses a ``concurrent.futures``
            process pool with at most ``workers`` tasks in flight.
        cache: optional result cache consulted before execution and
            checkpointed after every completion.
        policy: retry/backoff/timeout settings (default: no retries,
            no timeout).
        progress: callback invoked once per finished task (cache hits
            included), in completion order.
        instruments: optional :class:`repro.obs.Instruments` (falls
            back to the installed process default).  Each completion
            increments ``runtime_tasks_total{status}`` and
            ``runtime_task_attempts_total`` and observes the task's
            wall time; the grid itself runs in a ``run_tasks`` span.

    The returned report is deterministic: identical tasks produce
    byte-identical outcome values for any ``workers`` and any mixture
    of cached and fresh results.
    """
    task_list = list(tasks)
    policy = policy if policy is not None else RetryPolicy()
    if workers < 1:
        raise ValueError(f"workers={workers} must be >= 1")
    obs = resolve_instruments(instruments)
    begun = time.perf_counter()
    fingerprints = [task_fingerprint(task) for task in task_list]
    outcomes: list[TaskOutcome | None] = [None] * len(task_list)
    total = len(task_list)
    done_count = 0

    def emit(outcome: TaskOutcome) -> None:
        nonlocal done_count
        done_count += 1
        outcomes[outcome.index] = outcome
        if obs is not None:
            obs.registry.counter(
                "runtime_tasks_total",
                "Finished tasks by final status (ok/cached/failed).",
                ("status",),
            ).inc(status=outcome.status)
            if outcome.attempts > 1:
                obs.registry.counter(
                    "runtime_task_retries_total",
                    "Extra attempts beyond the first, across tasks.",
                ).inc(float(outcome.attempts - 1))
            if not outcome.cached:
                obs.registry.histogram(
                    "runtime_task_wall_seconds",
                    "Per-task wall time (fresh executions only).",
                ).observe(outcome.wall_time_s)
        if progress is not None:
            progress(outcome, done_count, total)

    pending: list[int] = []
    for index, fingerprint in enumerate(fingerprints):
        entry = cache.get(fingerprint) if cache is not None else None
        if entry is not None:
            emit(
                TaskOutcome(
                    index=index,
                    key=task_list[index].label,
                    fingerprint=fingerprint,
                    value=entry.value,
                    cached=True,
                )
            )
        else:
            pending.append(index)

    if workers == 1:
        for index in pending:
            outcome = _run_one_serial(
                task_list[index], fingerprints[index], index, policy
            )
            _checkpoint(cache, task_list[index], outcome)
            emit(outcome)
    elif pending:
        _run_in_pool(
            task_list, fingerprints, pending, workers, policy, cache, emit
        )

    finished = [outcome for outcome in outcomes if outcome is not None]
    report = RunReport(
        outcomes=tuple(finished),
        workers=workers,
        wall_time_s=time.perf_counter() - begun,
    )
    if obs is not None:
        obs.registry.counter(
            "runtime_grids_total", "Completed run_tasks grids."
        ).inc()
        obs.registry.counter(
            "runtime_cache_hits_total", "Tasks served from the cache."
        ).inc(float(report.cache_hits))
        obs.registry.histogram(
            "runtime_grid_wall_seconds",
            "End-to-end wall time of one grid.",
        ).observe(report.wall_time_s)
    return report
