"""Grid adapters: scenario and campaign sweeps as fingerprinted tasks.

This module is the domain bridge between the generic execution runtime
(:mod:`repro.runtime.executor`) and the simulation layer: it encodes
:class:`~repro.sim.shuffle_sim.ShuffleScenario` /
:class:`~repro.sim.campaign.CampaignConfig` cells as JSON-parameter
:class:`~repro.runtime.task.Task` objects, runs them through
:func:`~repro.runtime.executor.run_tasks`, and decodes the results back
into the simulation dataclasses the figure drivers already consume.

Seed contract
    A grid cell's stream is reconstructed in the worker as
    ``SeedSequence(seed, spawn_key=tuple(spawn_key))``, which is exactly
    the child ``SeedSequence(seed).spawn(n)[i]`` would yield for
    ``spawn_key=[i]`` — so sweeps match the serial spawn-based
    derivation bit for bit, for any worker count.  Figure grids that
    historically reuse one base seed per cell pass ``spawn_seeds=False``
    (empty spawn key), which degenerates to ``SeedSequence(seed)`` and
    preserves their published numbers.

Code versioning
    Cell fingerprints embed a combined hash of the simulation modules
    the cell actually executes (engine, arrivals, statistics), not just
    this adapter file, so editing the physics invalidates cached grids.

Importing this module registers the ``"sweep"`` and ``"campaign_batch"``
backends with :mod:`repro.sim.backend`, which is how
:func:`repro.sim.sweep.sweep` and
:func:`repro.sim.campaign.run_campaign_batch` gain their ``workers=``
path without the sim layer ever importing the runtime layer.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..sim.backend import register_backend
from ..sim.campaign import (
    AttackWave,
    CampaignConfig,
    CampaignResult,
    WaveOutcome,
    run_campaign,
)
from ..sim.shuffle_sim import (
    RunRecord,
    ScenarioResult,
    ShuffleScenario,
    run_scenario,
)
from ..sim.stats import SampleSummary
from ..sim.sweep import record_from_result
from .cache import ResultCache
from .executor import ProgressFn, RetryPolicy, RunReport, run_tasks
from .task import Task, module_code_version

__all__ = [
    "run_campaign_grid",
    "run_scenario_grid",
    "run_scenario_grid_report",
    "scenario_tasks",
    "sweep_records",
]

#: modules whose source participates in scenario-cell fingerprints.
_SCENARIO_CODE_MODULES = (
    "repro.core.shuffler",
    "repro.sim.arrivals",
    "repro.sim.shuffle_sim",
    "repro.sim.stats",
)
#: modules whose source participates in campaign-cell fingerprints.
_CAMPAIGN_CODE_MODULES = (
    "repro.core.shuffler",
    "repro.sim.campaign",
    "repro.sim.stats",
)


@functools.lru_cache(maxsize=None)
def _combined_code_version(module_names: tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    for name in module_names:
        digest.update(name.encode("utf-8"))
        digest.update(module_code_version(name).encode("utf-8"))
    return digest.hexdigest()[:16]


def _seed_sequence(
    seed: int, spawn_key: Sequence[int]
) -> np.random.SeedSequence:
    """``SeedSequence(seed).spawn(n)[i]`` reconstructed from plain JSON.

    numpy defines the i-th spawned child of ``SeedSequence(seed)`` as
    ``SeedSequence(seed, spawn_key=(i,))``, so ``(seed, [i])`` round-
    trips the exact child through JSON task parameters.  An empty spawn
    key is the base sequence itself.
    """
    return np.random.SeedSequence(seed, spawn_key=tuple(spawn_key))


# ----------------------------------------------------------------------
# codecs: simulation dataclasses <-> JSON task payloads
# ----------------------------------------------------------------------
def _encode_scenario(scenario: ShuffleScenario) -> dict[str, object]:
    return dataclasses.asdict(scenario)


def _decode_scenario(payload: Mapping[str, object]) -> ShuffleScenario:
    return ShuffleScenario(**payload)  # type: ignore[arg-type]


def _encode_summary(summary: SampleSummary) -> dict[str, object]:
    return {
        "mean": float(summary.mean),
        "half_width": float(summary.half_width),
        "n": int(summary.n),
        "confidence": float(summary.confidence),
        "std": float(summary.std),
    }


def _decode_summary(payload: Mapping[str, object]) -> SampleSummary:
    return SampleSummary(
        mean=float(payload["mean"]),  # type: ignore[arg-type]
        half_width=float(payload["half_width"]),  # type: ignore[arg-type]
        n=int(payload["n"]),  # type: ignore[arg-type]
        confidence=float(payload["confidence"]),  # type: ignore[arg-type]
        std=float(payload["std"]),  # type: ignore[arg-type]
    )


def _encode_run(run: RunRecord) -> dict[str, object]:
    return {
        "n_shuffles": int(run.n_shuffles),
        "benign_saved": int(run.benign_saved),
        "benign_initial": int(run.benign_initial),
        "benign_total": int(run.benign_total),
        "reached_target": bool(run.reached_target),
        "saved_per_round": [int(saved) for saved in run.saved_per_round],
    }


def _decode_run(payload: Mapping[str, object]) -> RunRecord:
    return RunRecord(
        n_shuffles=int(payload["n_shuffles"]),  # type: ignore[arg-type]
        benign_saved=int(payload["benign_saved"]),  # type: ignore[arg-type]
        benign_initial=int(payload["benign_initial"]),  # type: ignore[arg-type]
        benign_total=int(payload["benign_total"]),  # type: ignore[arg-type]
        reached_target=bool(payload["reached_target"]),
        saved_per_round=tuple(
            int(saved)
            for saved in payload["saved_per_round"]  # type: ignore[union-attr]
        ),
    )


def _encode_scenario_result(result: ScenarioResult) -> dict[str, object]:
    return {
        "scenario": _encode_scenario(result.scenario),
        "runs": [_encode_run(run) for run in result.runs],
        "shuffles": _encode_summary(result.shuffles),
        "saved_fraction": _encode_summary(result.saved_fraction),
    }


def _decode_scenario_result(payload: Mapping[str, object]) -> ScenarioResult:
    return ScenarioResult(
        scenario=_decode_scenario(payload["scenario"]),  # type: ignore[arg-type]
        runs=tuple(
            _decode_run(run)
            for run in payload["runs"]  # type: ignore[union-attr]
        ),
        shuffles=_decode_summary(payload["shuffles"]),  # type: ignore[arg-type]
        saved_fraction=_decode_summary(
            payload["saved_fraction"]  # type: ignore[arg-type]
        ),
    )


def _encode_campaign_config(config: CampaignConfig) -> dict[str, object]:
    return {
        "waves": [dataclasses.asdict(wave) for wave in config.waves],
        "horizon_hours": float(config.horizon_hours),
        "baseline_replicas": int(config.baseline_replicas),
        "shuffle_replicas": int(config.shuffle_replicas),
        "shuffle_seconds": float(config.shuffle_seconds),
    }


def _decode_campaign_config(payload: Mapping[str, object]) -> CampaignConfig:
    return CampaignConfig(
        waves=tuple(
            AttackWave(**wave)
            for wave in payload["waves"]  # type: ignore[union-attr]
        ),
        horizon_hours=float(payload["horizon_hours"]),  # type: ignore[arg-type]
        baseline_replicas=int(payload["baseline_replicas"]),  # type: ignore[arg-type]
        shuffle_replicas=int(payload["shuffle_replicas"]),  # type: ignore[arg-type]
        shuffle_seconds=float(payload["shuffle_seconds"]),  # type: ignore[arg-type]
    )


def _encode_campaign_result(result: CampaignResult) -> dict[str, object]:
    return {
        "outcomes": [
            {
                "wave": dataclasses.asdict(outcome.wave),
                "shuffles": int(outcome.shuffles),
                "saved_fraction": float(outcome.saved_fraction),
                "mitigation_hours": float(outcome.mitigation_hours),
            }
            for outcome in result.outcomes
        ],
        "replica_hours_reactive": float(result.replica_hours_reactive),
        "replica_hours_always_on": float(result.replica_hours_always_on),
    }


def _decode_campaign_result(payload: Mapping[str, object]) -> CampaignResult:
    return CampaignResult(
        outcomes=tuple(
            WaveOutcome(
                wave=AttackWave(**outcome["wave"]),
                shuffles=int(outcome["shuffles"]),
                saved_fraction=float(outcome["saved_fraction"]),
                mitigation_hours=float(outcome["mitigation_hours"]),
            )
            for outcome in payload["outcomes"]  # type: ignore[union-attr]
        ),
        replica_hours_reactive=float(
            payload["replica_hours_reactive"]  # type: ignore[arg-type]
        ),
        replica_hours_always_on=float(
            payload["replica_hours_always_on"]  # type: ignore[arg-type]
        ),
    )


# ----------------------------------------------------------------------
# worker-side cell functions (module-level: picklable by reference)
# ----------------------------------------------------------------------
def scenario_cell(
    scenario: Mapping[str, object],
    repetitions: int,
    seed: int,
    spawn_key: Sequence[int],
    confidence: float,
) -> dict[str, object]:
    """Run one scenario cell from its JSON payload; return encoded result."""
    result = run_scenario(
        _decode_scenario(scenario),
        repetitions=repetitions,
        seed=_seed_sequence(seed, spawn_key),
        confidence=confidence,
    )
    return _encode_scenario_result(result)


def campaign_cell(
    config: Mapping[str, object],
    seed: int,
    spawn_key: Sequence[int],
    planner: str,
    estimator: str,
) -> dict[str, object]:
    """Run one campaign cell from its JSON payload; return encoded result."""
    result = run_campaign(
        _decode_campaign_config(config),
        seed=_seed_sequence(seed, spawn_key),
        planner=planner,
        estimator=estimator,
    )
    return _encode_campaign_result(result)


# ----------------------------------------------------------------------
# grid builders and runners
# ----------------------------------------------------------------------
def scenario_tasks(
    scenarios: Sequence[ShuffleScenario],
    *,
    repetitions: int = 5,
    seed: int = 0,
    confidence: float = 0.99,
    spawn_seeds: bool = True,
) -> list[Task]:
    """One fingerprinted task per scenario cell.

    ``spawn_seeds=True`` gives cell ``i`` the stream of
    ``SeedSequence(seed).spawn(n)[i]`` (independent cells — the sweep
    contract); ``spawn_seeds=False`` hands every cell the base
    ``SeedSequence(seed)`` (the figure drivers' historical convention).
    """
    version = _combined_code_version(_SCENARIO_CODE_MODULES)
    return [
        Task(
            fn=scenario_cell,
            params={
                "scenario": _encode_scenario(scenario),
                "repetitions": repetitions,
                "seed": seed,
                "spawn_key": [index] if spawn_seeds else [],
                "confidence": confidence,
            },
            key=f"scenario[{index}] {scenario.describe()}",
            code_version=version,
        )
        for index, scenario in enumerate(scenarios)
    ]


def _coerce_cache(
    cache: ResultCache | Path | str | None,
) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def run_scenario_grid(
    scenarios: Sequence[ShuffleScenario],
    *,
    repetitions: int = 5,
    seed: int = 0,
    confidence: float = 0.99,
    spawn_seeds: bool = True,
    workers: int = 1,
    cache: ResultCache | Path | str | None = None,
    policy: RetryPolicy | None = None,
    progress: ProgressFn | None = None,
) -> list[ScenarioResult]:
    """Run a scenario grid through the runtime; results in grid order.

    Deterministic for any ``workers``: every cell's stream derives only
    from ``(seed, cell index)`` (see :func:`scenario_tasks`), and all
    values are JSON-normalized, so serial, parallel, and cache-resumed
    runs are byte-identical.  Raises
    :class:`~repro.runtime.executor.GridError` when cells fail; the
    completed cells are already checkpointed when a cache is given.
    """
    results, _report = run_scenario_grid_report(
        scenarios,
        repetitions=repetitions,
        seed=seed,
        confidence=confidence,
        spawn_seeds=spawn_seeds,
        workers=workers,
        cache=cache,
        policy=policy,
        progress=progress,
    )
    return results


def run_campaign_grid(
    configs: Sequence[CampaignConfig],
    *,
    seed: int = 0,
    planner: str = "greedy",
    estimator: str = "oracle",
    workers: int = 1,
    cache: ResultCache | Path | str | None = None,
    policy: RetryPolicy | None = None,
    progress: ProgressFn | None = None,
) -> list[CampaignResult]:
    """Run a batch of campaign configs; one spawned seed stream each."""
    version = _combined_code_version(_CAMPAIGN_CODE_MODULES)
    tasks = [
        Task(
            fn=campaign_cell,
            params={
                "config": _encode_campaign_config(config),
                "seed": seed,
                "spawn_key": [index],
                "planner": planner,
                "estimator": estimator,
            },
            key=f"campaign[{index}] waves={len(config.waves)}",
            code_version=version,
        )
        for index, config in enumerate(configs)
    ]
    report = run_tasks(
        tasks,
        workers=workers,
        cache=_coerce_cache(cache),
        policy=policy,
        progress=progress,
    )
    return [
        _decode_campaign_result(value)  # type: ignore[arg-type]
        for value in report.values()
    ]


def run_scenario_grid_report(
    scenarios: Sequence[ShuffleScenario],
    *,
    repetitions: int = 5,
    seed: int = 0,
    confidence: float = 0.99,
    spawn_seeds: bool = True,
    workers: int = 1,
    cache: ResultCache | Path | str | None = None,
    policy: RetryPolicy | None = None,
    progress: ProgressFn | None = None,
) -> tuple[list[ScenarioResult], RunReport]:
    """Like :func:`run_scenario_grid`, but also return run telemetry."""
    report = run_tasks(
        scenario_tasks(
            scenarios,
            repetitions=repetitions,
            seed=seed,
            confidence=confidence,
            spawn_seeds=spawn_seeds,
        ),
        workers=workers,
        cache=_coerce_cache(cache),
        policy=policy,
        progress=progress,
    )
    results = [
        _decode_scenario_result(value)  # type: ignore[arg-type]
        for value in report.values()
    ]
    return results, report


# ----------------------------------------------------------------------
# sim-layer backends (dependency inversion: sim never imports runtime)
# ----------------------------------------------------------------------
def sweep_records(
    scenarios: Sequence[ShuffleScenario],
    repetitions: int = 5,
    seed: int = 0,
    confidence: float = 0.99,
    *,
    workers: int = 1,
    cache_dir: Path | str | None = None,
    progress: ProgressFn | None = None,
) -> list[dict[str, object]]:
    """Backend for :func:`repro.sim.sweep.sweep`: flat records per cell."""
    results = run_scenario_grid(
        scenarios,
        repetitions=repetitions,
        seed=seed,
        confidence=confidence,
        spawn_seeds=True,
        workers=workers,
        cache=cache_dir,
        progress=progress,
    )
    return [record_from_result(result) for result in results]


def _campaign_batch_backend(
    configs: Sequence[CampaignConfig],
    seed: int = 0,
    planner: str = "greedy",
    estimator: str = "oracle",
    *,
    workers: int = 1,
    cache_dir: Path | str | None = None,
    progress: ProgressFn | None = None,
) -> list[CampaignResult]:
    """Backend for :func:`repro.sim.campaign.run_campaign_batch`."""
    return run_campaign_grid(
        configs,
        seed=seed,
        planner=planner,
        estimator=estimator,
        workers=workers,
        cache=cache_dir,
        progress=progress,
    )


register_backend("sweep", sweep_records)
register_backend("campaign_batch", _campaign_batch_backend)
