"""repro.obs — the unified observability layer.

One metrics/span/event substrate shared by every runtime layer (core,
sim, cloudsim, runtime, service), replacing the three ad-hoc schemas
that grew before it (``cloudsim.trace`` JSONL, service snapshot JSON,
runtime ``RunReport`` writers):

- :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with label support.
- :mod:`~repro.obs.spans` — :class:`Span`/:class:`SpanRecorder` timed
  nesting with explicit clock injection (sim-time or monotonic).
- :mod:`~repro.obs.events` — the canonical :class:`Event` record and
  the :class:`EventLog` collector (byte-compatible successor of
  ``cloudsim.trace``).
- :mod:`~repro.obs.export` — JSONL / JSON / Prometheus-text exporters.
- :mod:`~repro.obs.instruments` — the uniform ``instruments=`` handle
  components accept (``None`` = disabled, one attribute check).
- :mod:`~repro.obs.cli` — the ``repro-obs`` trace inspector
  (``summarize`` / ``diff`` / ``tail``).

The layer is stdlib-only and imports nothing from the rest of the
package (reprolint P1 places ``obs`` below every other layer), so any
layer — core included — may depend on it.

Quickstart::

    from repro.obs import Instruments
    from repro.core import ShuffleEngine

    instruments = Instruments.create(source="core")
    engine = ShuffleEngine(n_replicas=1000, instruments=instruments)
    engine.run(benign=10_000, bots=5_000)
    print(instruments.registry.counter("shuffle_rounds_total").value())
    for line in instruments.spans.tree_lines()[:8]:
        print(line)
"""

from __future__ import annotations

from .events import Event, EventLog
from .export import (
    PROMETHEUS_CONTENT_TYPE,
    events_to_jsonl,
    export_json,
    export_jsonl,
    read_events,
    read_events_text,
    render_prometheus,
)
from .instruments import (
    Instruments,
    get_default_instruments,
    resolve_instruments,
    set_default_instruments,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "Instruments",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "SpanRecorder",
    "events_to_jsonl",
    "export_json",
    "export_jsonl",
    "get_default_instruments",
    "read_events",
    "read_events_text",
    "render_prometheus",
    "resolve_instruments",
    "set_default_instruments",
]
