"""The one instrumentation handle every layer accepts.

Instead of growing per-class ``tracer=`` / ``telemetry=`` keywords,
instrumentable components across the tree take a uniform keyword::

    engine = ShuffleEngine(n_replicas=1000, instruments=instruments)
    coordinator = ServiceCoordinator(config, instruments=instruments)

with ``instruments=None`` (the default) meaning *disabled*.  The
contract instrumented code must follow (documented in CONTRIBUTING):

- the disabled path costs one attribute check — ``if instruments is
  not None:`` guards every emit site; no metric objects exist, no
  strings are built, nothing allocates;
- components resolve the keyword through :func:`resolve_instruments`
  so a process-wide default installed via :func:`set_default_instruments`
  (used by benchmarks and opt-in production setups) is picked up
  without threading the handle through every constructor;
- all three channels hang off the same handle: ``registry`` (metric
  families), ``spans`` (timed nesting), ``events`` (the audit log).

The handle is stdlib-only and layer-neutral; which clock the spans use
is the caller's choice (sim-time in the simulators, ``time.monotonic``
in service/runtime — the default of :meth:`Instruments.create`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .events import EventLog
from .metrics import MetricsRegistry
from .spans import SpanRecorder

__all__ = [
    "Instruments",
    "get_default_instruments",
    "resolve_instruments",
    "set_default_instruments",
]


@dataclass
class Instruments:
    """Bundle of the three observability channels.

    Build one with :meth:`create` (fresh registry/recorder/log sharing
    one clock) or assemble the pieces yourself — e.g. a sim-time span
    recorder feeding a shared registry.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    spans: SpanRecorder = field(default_factory=SpanRecorder)
    events: EventLog = field(default_factory=EventLog)

    @classmethod
    def create(
        cls,
        clock: Callable[[], float] = time.monotonic,
        source: str | None = None,
        capacity: int | None = None,
    ) -> "Instruments":
        """Fresh bundle on one clock.

        Args:
            clock: time source for spans (and available to emit sites).
            source: default ``source`` stamp on emitted events.
            capacity: retention cap for spans and events (``None`` =
                unbounded; long-lived services should bound it).
        """
        return cls(
            registry=MetricsRegistry(),
            spans=SpanRecorder(clock=clock, capacity=capacity),
            events=EventLog(capacity=capacity, source=source),
        )

    def emit(self, time_stamp: float, kind: str, **data: Any) -> None:
        """Convenience: append one event to the audit log."""
        self.events.emit(time_stamp, kind, **data)

    def export_state(self) -> dict[str, Any]:
        """JSON-ready dump of all three channels (debug/telemetry)."""
        return {
            "metrics": self.registry.to_dict(),
            "spans": [
                event.to_dict() for event in self.spans.to_events()
            ],
            "events": [event.to_dict() for event in self.events.events],
        }


#: Process-wide default, installed explicitly — never implicitly.
_default: Instruments | None = None


def set_default_instruments(
    instruments: Instruments | None,
) -> Instruments | None:
    """Install (or clear, with ``None``) the process-wide default.

    Returns the previous default so callers can restore it::

        previous = set_default_instruments(mine)
        try:
            ...
        finally:
            set_default_instruments(previous)
    """
    global _default
    previous = _default
    _default = instruments
    return previous


def get_default_instruments() -> Instruments | None:
    """The installed process-wide default, or ``None`` (disabled)."""
    return _default


def resolve_instruments(
    instruments: Instruments | None,
) -> Instruments | None:
    """Resolve a component's ``instruments=`` keyword.

    An explicit handle wins; ``None`` falls back to the process-wide
    default, which is itself ``None`` unless something installed one —
    so the out-of-the-box state stays a no-op.
    """
    if instruments is not None:
        return instruments
    return _default
