"""``repro-obs`` — inspect JSONL trace files from any layer.

Usage::

    repro-obs summarize trace.jsonl
    repro-obs diff before.jsonl after.jsonl
    repro-obs tail trace.jsonl -n 20

``summarize`` prints per-kind counts, the covered time range, and span
statistics; ``diff`` compares per-kind counts between two traces (new
and vanished kinds flagged); ``tail`` pretty-prints the last N events.

Exit codes: 0 success, 1 ``diff`` found differences, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .events import Event
from .export import read_events


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Summarize, diff, and tail JSONL trace files produced by "
            "the repro.obs observability layer (cloudsim traces, "
            "service audit logs, span exports)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="per-kind counts, time range, span stats"
    )
    summarize.add_argument("trace", help="JSONL trace file")
    summarize.add_argument(
        "--json", action="store_true",
        help="machine-readable summary instead of the table",
    )

    diff = commands.add_parser(
        "diff", help="compare per-kind event counts of two traces"
    )
    diff.add_argument("left", help="baseline JSONL trace")
    diff.add_argument("right", help="candidate JSONL trace")

    tail = commands.add_parser(
        "tail", help="pretty-print the last N events"
    )
    tail.add_argument("trace", help="JSONL trace file")
    tail.add_argument(
        "-n", "--lines", type=int, default=10,
        help="events to show (default: 10)",
    )
    tail.add_argument(
        "--kind", help="only events of this kind",
    )
    return parser


def _load(path: str) -> list[Event]:
    if not Path(path).exists():
        raise SystemExit(f"repro-obs: no such trace file: {path}")
    return read_events(path)


def heavy_hitter_tables(
    events: Sequence[Event],
) -> dict[str, dict[str, object]]:
    """Latest ``heavy_hitters`` report per replica, rendered
    structurally from the event payload (this layer never imports
    :mod:`repro.detect`): replica -> window tallies + top-k rows of
    ``[key, count, error]``."""
    latest: dict[str, dict[str, object]] = {}
    for event in events:
        if event.kind != "heavy_hitters":
            continue
        data = event.data
        replica = str(data.get("replica", "?"))
        previous = latest.get(replica)
        if previous is not None and previous["time"] > event.time:
            continue
        latest[replica] = {
            "time": event.time,
            "total": int(data.get("total", 0)),
            "throttled": int(data.get("throttled", 0)),
            "top": [
                [str(key), int(count), int(error)]
                for key, count, error in data.get("top", [])
            ],
        }
    return dict(sorted(latest.items()))


def trust_tables(
    events: Sequence[Event],
) -> dict[str, dict[str, object]]:
    """Latest ``trust_snapshot`` per replica, rendered structurally
    from the event payload (this layer never imports
    :mod:`repro.trust`): replica -> cohort size, mean trust, and
    clients-per-tier counts."""
    latest: dict[str, dict[str, object]] = {}
    for event in events:
        if event.kind != "trust_snapshot":
            continue
        data = event.data
        replica = str(data.get("replica", "?"))
        previous = latest.get(replica)
        if previous is not None and previous["time"] > event.time:
            continue
        tiers = data.get("tiers", {})
        latest[replica] = {
            "time": event.time,
            "clients": int(data.get("clients", 0)),
            "mean_trust": float(data.get("mean_trust", 0.0)),
            "tiers": {
                str(name): int(count)
                for name, count in (
                    tiers.items() if isinstance(tiers, dict) else ()
                )
            },
        }
    return dict(sorted(latest.items()))


def summarize_events(events: Sequence[Event]) -> dict[str, object]:
    """The ``summarize`` payload (testable without the CLI)."""
    kinds: dict[str, int] = {}
    sources: dict[str, int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.source is not None:
            sources[event.source] = sources.get(event.source, 0) + 1
    spans = [e for e in events if e.kind == "span"]
    span_stats: dict[str, dict[str, float]] = {}
    for event in spans:
        name = str(event.data.get("name", "?"))
        duration = float(event.data.get("duration", 0.0))
        stats = span_stats.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stats["count"] += 1
        stats["total_s"] += duration
        stats["max_s"] = max(stats["max_s"], duration)
    times = [event.time for event in events]
    return {
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "sources": dict(sorted(sources.items())),
        "time_range": (
            {"first": min(times), "last": max(times)} if times else None
        ),
        "spans": {
            name: {
                "count": int(stats["count"]),
                "total_s": round(stats["total_s"], 6),
                "max_s": round(stats["max_s"], 6),
            }
            for name, stats in sorted(span_stats.items())
        },
        "heavy_hitters": heavy_hitter_tables(events),
        "trust_tiers": trust_tables(events),
    }


def _cmd_summarize(options: argparse.Namespace) -> int:
    summary = summarize_events(_load(options.trace))
    if options.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"{options.trace}: {summary['events']} events")
    time_range = summary["time_range"]
    if isinstance(time_range, dict):
        print(
            f"  time range: {time_range['first']:.6f} .. "
            f"{time_range['last']:.6f}"
        )
    kinds = summary["kinds"]
    assert isinstance(kinds, dict)
    for kind, count in kinds.items():
        print(f"  {kind:<24} {count}")
    spans = summary["spans"]
    assert isinstance(spans, dict)
    if spans:
        print("  spans:")
        for name, stats in spans.items():
            print(
                f"    {name:<22} n={stats['count']} "
                f"total={stats['total_s']:.6f}s "
                f"max={stats['max_s']:.6f}s"
            )
    hitters = summary["heavy_hitters"]
    assert isinstance(hitters, dict)
    if hitters:
        print("  heavy hitters (latest report per replica):")
        for replica, table in hitters.items():
            print(
                f"    replica {replica}: {table['total']} requests, "
                f"{table['throttled']} throttled "
                f"@t={table['time']:.3f}"
            )
            for key, count, error in table["top"]:
                guaranteed = count - error
                print(
                    f"      {key:<20} count<={count} "
                    f"(>= {guaranteed})"
                )
    trust = summary["trust_tiers"]
    assert isinstance(trust, dict)
    if trust:
        print("  trust tiers (latest snapshot per replica):")
        for replica, table in trust.items():
            tiers = ", ".join(
                f"{name}={count}"
                for name, count in table["tiers"].items()
            )
            print(
                f"    replica {replica}: {table['clients']} clients, "
                f"mean trust {table['mean_trust']:.3f} "
                f"@t={table['time']:.3f}"
            )
            print(f"      {tiers}")
    return 0


def diff_counts(
    left: Sequence[Event], right: Sequence[Event]
) -> dict[str, tuple[int, int]]:
    """Per-kind (left count, right count) for kinds that differ."""
    counts: dict[str, list[int]] = {}
    for event in left:
        counts.setdefault(event.kind, [0, 0])[0] += 1
    for event in right:
        counts.setdefault(event.kind, [0, 0])[1] += 1
    return {
        kind: (pair[0], pair[1])
        for kind, pair in sorted(counts.items())
        if pair[0] != pair[1]
    }


def _cmd_diff(options: argparse.Namespace) -> int:
    left = _load(options.left)
    right = _load(options.right)
    differences = diff_counts(left, right)
    print(
        f"{options.left}: {len(left)} events | "
        f"{options.right}: {len(right)} events"
    )
    if not differences:
        print("  per-kind counts identical")
        return 0
    for kind, (before, after) in differences.items():
        delta = after - before
        print(f"  {kind:<24} {before} -> {after} ({delta:+d})")
    return 1


def _cmd_tail(options: argparse.Namespace) -> int:
    events = _load(options.trace)
    if options.kind is not None:
        events = [e for e in events if e.kind == options.kind]
    for event in events[-max(0, options.lines):]:
        payload = json.dumps(event.data, sort_keys=True)
        source = f" [{event.source}]" if event.source else ""
        print(f"{event.time:>14.6f} {event.kind}{source} {payload}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.command == "summarize":
        return _cmd_summarize(options)
    if options.command == "diff":
        return _cmd_diff(options)
    if options.command == "tail":
        return _cmd_tail(options)
    parser.error(f"unknown command {options.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
