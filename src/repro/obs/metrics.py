"""Counters, gauges, and fixed-bucket histograms with label support.

The registry is the service-independent half of the observability layer:
components register named metric families once and update them on hot
paths.  Design constraints, in priority order:

- **No-op cheapness** — instrumented code guards every update behind a
  single ``instruments is not None`` attribute check (see
  :mod:`repro.obs.instruments`); the metric objects themselves do one
  dict lookup per labelled update and no allocation on the label-free
  fast path.
- **Determinism** — rendering sorts families by name and series by
  label values, so exported text is independent of update order and of
  ``PYTHONHASHSEED`` (the repo-wide contract reprolint's P3 pass and the
  CI ``hashseed`` job enforce).
- **Stdlib only** — the ``obs`` layer sits below every other layer in
  the import contract (reprolint P1) and must not pull in numpy.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds (seconds-flavoured, spanning
#: microseconds to minutes — wide enough for both span durations and
#: queue depths).  Callers measuring other units pass their own.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: The empty label tuple — shared so the label-free fast path never
#: allocates.
_NO_LABELS: tuple[str, ...] = ()


def _label_values(
    label_names: tuple[str, ...], labels: Mapping[str, object]
) -> tuple[str, ...]:
    """Canonical series key: values in declaration order, stringified."""
    try:
        return tuple(str(labels[name]) for name in label_names)
    except KeyError as missing:
        raise ValueError(
            f"missing label {missing.args[0]!r}; declared labels are "
            f"{list(label_names)}"
        ) from None


class Metric:
    """Common shape of one metric family (name, help text, labels)."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> None:
        if not name or not all(
            ch.isalnum() or ch == "_" for ch in name
        ) or name[0].isdigit():
            raise ValueError(
                f"invalid metric name {name!r}: use [a-zA-Z_][a-zA-Z0-9_]*"
            )
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if not self.label_names:
            if labels:
                raise ValueError(
                    f"metric {self.name!r} declared no labels, got "
                    f"{sorted(labels)}"
                )
            return _NO_LABELS
        return _label_values(self.label_names, labels)


class Counter(Metric):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Iterator[tuple[tuple[str, ...], float]]:
        """(label values, value) pairs in sorted label order."""
        yield from sorted(self._values.items())


class Gauge(Metric):
    """A value that can go up and down (pool sizes, beliefs, ratios)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Iterator[tuple[tuple[str, ...], float]]:
        yield from sorted(self._values.items())


class _HistogramSeries:
    """Cumulative bucket counts + sum + count for one label set."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        # Per-bucket counts (cumulated only at render time), running sum
        # of observed values, and total observation count.
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket histogram (Prometheus ``le`` semantics).

    Bucket bounds are *upper* edges; an observation lands in the first
    bucket whose bound is ``>= value`` (``le``, i.e. edge values belong
    to the bucket they name).  Observations above the last bound are
    counted only in the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError(
                "bucket bounds must be finite; +Inf is implicit"
            )
        self.buckets = bounds
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                len(self.buckets) + 1
            )
        # Linear scan: bucket lists are short (~10) and the loop body is
        # a single comparison — bisect would cost more in call overhead.
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        series.bucket_counts[index] += 1
        series.total += value
        series.count += 1

    def count(self, **labels: object) -> int:
        series = self._series.get(self._key(labels))
        return 0 if series is None else series.count

    def sum(self, **labels: object) -> float:
        series = self._series.get(self._key(labels))
        return 0.0 if series is None else series.total

    def cumulative_buckets(
        self, **labels: object
    ) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ``+Inf`` last."""
        series = self._series.get(self._key(labels))
        bounds = [*self.buckets, math.inf]
        if series is None:
            return [(bound, 0) for bound in bounds]
        running = 0
        out = []
        for bound, count in zip(bounds, series.bucket_counts):
            running += count
            out.append((bound, running))
        return out

    def series(
        self,
    ) -> Iterator[tuple[tuple[str, ...], _HistogramSeries]]:
        yield from sorted(self._series.items())


class MetricsRegistry:
    """Named metric families, each created once and shared thereafter.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call fixes the help text, label names, and (for histograms) bucket
    bounds; later calls with the same name return the same object and
    reject conflicting declarations — two call sites silently updating
    differently shaped families is how dashboards lie.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def _get_or_create(
        self, cls: type, name: str, *args: object, **kwargs: object
    ) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> Counter:
        metric = self._get_or_create(Counter, name, help_text, label_names)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> Gauge:
        metric = self._get_or_create(Gauge, name, help_text, label_names)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, help_text, label_names, buckets
        )
        assert isinstance(metric, Histogram)
        return metric

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dump of every family (sorted, hash-seed stable)."""
        families: dict[str, object] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                series = [
                    {
                        "labels": dict(
                            zip(metric.label_names, values)
                        ),
                        "count": data.count,
                        "sum": data.total,
                        "buckets": [
                            {
                                "le": "+Inf" if math.isinf(b) else b,
                                "count": c,
                            }
                            for b, c in metric.cumulative_buckets(
                                **dict(zip(metric.label_names, values))
                            )
                        ],
                    }
                    for values, data in metric.series()
                ]
            else:
                assert isinstance(metric, (Counter, Gauge))
                series = [
                    {
                        "labels": dict(zip(metric.label_names, values)),
                        "value": value,
                    }
                    for values, value in metric.series()
                ]
            families[metric.name] = {
                "kind": metric.kind,
                "help": metric.help_text,
                "series": series,
            }
        return families
