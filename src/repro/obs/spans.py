"""Nested spans: what happened inside one operation, and how long.

A :class:`Span` is one timed operation; a :class:`SpanRecorder` hands
them out as context managers and keeps the finished records.  One
shuffle round becomes a span tree::

    with recorder.span("shuffle_round", round=3):
        with recorder.span("estimate"):
            ...
        with recorder.span("plan"):
            ...
        with recorder.span("shuffle"):
            ...
        with recorder.span("substitute"):
            ...

Clocks are **explicit**: the recorder never reads wall-clock time on
its own.  The cloud simulation passes sim-time (``lambda: ctx.now``) so
traces line up with the DES timeline and reprolint's P4 wall-clock ban
stays satisfied; the live service and the runtime pass
``time.monotonic``.  The default is a zero clock — a recorder built
without a clock still nests and orders correctly, it just measures no
durations.

Span ids are small integers assigned in *start* order, so recorded
output is deterministic for a deterministic workload (no uuids, no
entropy — the same double-run contract the CI ``hashseed`` job checks).
The recorder keeps one active-span stack and is therefore meant for
sequential instrumentation; the repo's async call sites (the service
coordinator) serialize their instrumented sections, which is exactly
the granularity the span tree documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .events import Event

__all__ = ["Span", "SpanRecorder"]


def _zero_clock() -> float:
    return 0.0


@dataclass
class Span:
    """One timed, attributed operation; nested via ``parent_id``."""

    span_id: int
    name: str
    started_at: float
    parent_id: int | None = None
    ended_at: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed clock time; 0.0 while the span is still open."""
        if self.ended_at is None:
            return 0.0
        return self.ended_at - self.started_at

    @property
    def finished(self) -> bool:
        return self.ended_at is not None

    def set(self, **attrs: Any) -> None:
        """Attach attributes (e.g. the plan's group count) mid-span."""
        self.attrs.update(attrs)

    def to_event(self) -> Event:
        """Render the finished span as one canonical trace event."""
        data: dict[str, Any] = {
            "span_id": self.span_id,
            "name": self.name,
            "duration": round(self.duration, 9),
        }
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        data.update(self.attrs)
        return Event(time=self.started_at, kind="span", data=data)


class _SpanHandle:
    """Context manager produced by :meth:`SpanRecorder.span`."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._recorder._finish(self._span)


class SpanRecorder:
    """Collects finished spans in completion order.

    Args:
        clock: time source for start/end stamps (sim-time, monotonic
            wall-clock, or a test counter).  Defaults to a constant-zero
            clock: structure without durations.
        capacity: optional cap on retained finished spans (oldest
            dropped first), bounding memory in long-lived services.
    """

    def __init__(
        self,
        clock: Callable[[], float] = _zero_clock,
        capacity: int | None = None,
    ) -> None:
        self._clock = clock
        self.capacity = capacity
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_id = 1
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a child of the innermost active span (or a root)."""
        span = Span(
            span_id=self._next_id,
            name=name,
            started_at=self._clock(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        span.ended_at = self._clock()
        # Tolerate mis-nested exits (an inner span leaked past its
        # parent's close): pop through to the requested span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.spans.append(span)
        if self.capacity is not None and len(self.spans) > self.capacity:
            overflow = len(self.spans) - self.capacity
            del self.spans[:overflow]
            self.dropped += overflow

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def __len__(self) -> int:
        return len(self.spans)

    def named(self, name: str) -> list[Span]:
        """All finished spans with this name, in completion order."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def to_events(self) -> Iterator[Event]:
        """Finished spans as canonical events, in (start, id) order.

        Sorting by start time then id makes the export independent of
        completion interleaving: a parent that closes after its children
        still precedes them in the file.
        """
        ordered = sorted(
            self.spans, key=lambda s: (s.started_at, s.span_id)
        )
        for span in ordered:
            yield span.to_event()

    def tree_lines(self) -> list[str]:
        """Indented rendering of the span forest (debug/CLI helper)."""
        children: dict[int | None, list[Span]] = {}
        for span in sorted(
            self.spans, key=lambda s: (s.started_at, s.span_id)
        ):
            children.setdefault(span.parent_id, []).append(span)
        lines: list[str] = []

        def walk(parent_id: int | None, depth: int) -> None:
            for span in children.get(parent_id, []):
                lines.append(
                    "  " * depth
                    + f"{span.name} [{span.span_id}] "
                    f"{span.duration:.6f}s"
                )
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return lines
