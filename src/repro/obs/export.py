"""Exporters: one JSON/JSONL writer for every layer, Prometheus text.

``export_json``/``export_jsonl`` replace the per-module writers that
had grown in ``service.telemetry`` and ``runtime.executor`` — one
place now pins the on-disk conventions (UTF-8, trailing newline,
``indent=2`` + sorted keys for JSON documents) so reports from any
layer diff cleanly across runs.

``render_prometheus`` renders a :class:`~repro.obs.metrics.
MetricsRegistry` in the Prometheus text exposition format (version
0.0.4), which is what the live service's ``/metrics`` endpoint serves.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable, Iterator

from .events import Event
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "events_to_jsonl",
    "export_json",
    "export_jsonl",
    "read_events",
    "read_events_text",
    "render_prometheus",
]


# ----------------------------------------------------------------------
# JSON / JSONL
# ----------------------------------------------------------------------
def export_json(
    payload: Any, path: str | Path, *, sort_keys: bool = True
) -> Path:
    """Write one JSON document (pretty, newline-terminated)."""
    target = Path(path)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=sort_keys) + "\n",
        encoding="utf-8",
    )
    return target


def events_to_jsonl(events: Iterable[Event | dict[str, Any]]) -> str:
    """Render events (or ready dicts) as JSON-lines text."""
    lines = []
    for event in events:
        if isinstance(event, Event):
            lines.append(event.to_json())
        else:
            lines.append(json.dumps(event, sort_keys=True))
    return "\n".join(lines)


def export_jsonl(
    events: Iterable[Event | dict[str, Any]], path: str | Path
) -> Path:
    """Write events as a JSONL trace file."""
    target = Path(path)
    text = events_to_jsonl(events)
    target.write_text(
        text + "\n" if text else "", encoding="utf-8"
    )
    return target


def read_events_text(text: str) -> Iterator[Event]:
    """Parse JSONL text back into events (legacy records included)."""
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        yield Event.from_dict(json.loads(line))


def read_events(path: str | Path) -> list[Event]:
    """Load a JSONL trace file."""
    return list(
        read_events_text(Path(path).read_text(encoding="utf-8"))
    )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: Content type of the text exposition format, for HTTP servers.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(
    names: tuple[str, ...], values: tuple[str, ...], extra: str = ""
) -> str:
    parts = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text format, deterministically ordered.

    Families sort by name and series by label values, so the output is
    independent of update order and hash seed.
    """
    lines: list[str] = []
    for metric in registry:
        lines.append(
            f"# HELP {metric.name} {_escape_help(metric.help_text)}"
        )
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for values, value in metric.series():
                labels = _labels_text(metric.label_names, values)
                lines.append(
                    f"{metric.name}{labels} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for values, data in metric.series():
                labelled = dict(zip(metric.label_names, values))
                for bound, count in metric.cumulative_buckets(**labelled):
                    le = (
                        "+Inf" if math.isinf(bound)
                        else _format_value(bound)
                    )
                    labels = _labels_text(
                        metric.label_names, values, f'le="{le}"'
                    )
                    lines.append(f"{metric.name}_bucket{labels} {count}")
                labels = _labels_text(metric.label_names, values)
                lines.append(
                    f"{metric.name}_sum{labels} "
                    f"{_format_value(data.total)}"
                )
                lines.append(f"{metric.name}_count{labels} {data.count}")
    return "\n".join(lines) + ("\n" if lines else "")
