"""The canonical event record shared by every layer's audit trail.

Historically the repo observed itself through three unrelated schemas:
``cloudsim.trace`` JSONL events, the service's snapshot-over-HTTP, and
the runtime's per-task ``RunReport``.  :class:`Event` is the one record
type they now converge on; :class:`EventLog` is the shared collector
(the re-homed ``cloudsim.trace.Tracer``).

**Byte compatibility contract:** for events without the new optional
``source`` field, :meth:`Event.to_json` produces *exactly* the bytes
the legacy ``TraceEvent.to_json`` produced — ``{"time", "kind", **data}``
with sorted keys and time rounded to 6 decimals.  New fields are only
ever appended after the legacy payload, so existing JSONL consumers
(and the hashseed double-run diff in CI) keep working unmodified.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence anywhere in the system.

    Attributes:
        time: when it happened, on the emitting layer's clock (sim-time
            in the simulators, monotonic wall-clock in service/runtime).
        kind: event type tag (``shuffle_completed``, ``span``, ...).
        data: JSON-ready payload.
        source: optional emitting layer/component (``cloudsim``,
            ``service``, ...) — the only field the legacy schema lacked.
    """

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)
    source: str | None = None

    def to_json(self) -> str:
        legacy = json.dumps(
            {"time": round(self.time, 6), "kind": self.kind, **self.data},
            sort_keys=True,
        )
        if self.source is None:
            return legacy
        # Append-only extension: the legacy prefix stays byte-identical.
        return (
            legacy[:-1] + ', "source": ' + json.dumps(self.source) + "}"
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "time": round(self.time, 6),
            "kind": self.kind,
            **self.data,
        }
        if self.source is not None:
            out["source"] = self.source
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Event":
        """Inverse of :meth:`to_dict` (also parses legacy records)."""
        data = dict(payload)
        time = float(data.pop("time"))
        kind = str(data.pop("kind"))
        source = data.pop("source", None)
        return cls(time=time, kind=kind, data=data, source=source)


@dataclass
class EventLog:
    """Collects :class:`Event` records in arrival order.

    The direct descendant of ``cloudsim.trace.Tracer`` — same filter,
    capacity, and query semantics — now layer-neutral so the service
    and runtime can share it.

    Args:
        kinds: optional allow-list; events of other kinds are dropped at
            the emit site (useful to trace only shuffles in long runs).
        capacity: optional cap on retained events (oldest dropped
            first), bounding memory in very long runs.
        source: default ``source`` stamped on events emitted through
            :meth:`emit` (``None`` preserves the legacy byte format).
    """

    kinds: frozenset[str] | None = None
    capacity: int | None = None
    source: str | None = None
    events: list[Event] = field(default_factory=list)
    dropped: int = 0

    def emit(self, time: float, kind: str, **data: Any) -> None:
        """Record one event (subject to the kind filter and capacity)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        self.append(
            Event(time=time, kind=kind, data=data, source=self.source)
        )

    def append(self, event: Event) -> None:
        """Record a ready-made event (e.g. from a span recorder)."""
        if self.kinds is not None and event.kind not in self.kinds:
            return
        self.events.append(event)
        if self.capacity is not None and len(self.events) > self.capacity:
            overflow = len(self.events) - self.capacity
            del self.events[:overflow]
            self.dropped += overflow

    def of_kind(self, kind: str) -> list[Event]:
        """All retained events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def between(self, start: float, end: float) -> Iterator[Event]:
        """Events with ``start <= time <= end``."""
        return (
            event for event in self.events if start <= event.time <= end
        )

    def to_jsonl(self) -> str:
        """Export every retained event as JSON-lines."""
        return "\n".join(event.to_json() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)
